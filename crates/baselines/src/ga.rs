//! A genetic algorithm over synthesis sequences, following the shape of the
//! `geneticalgorithm2` package the paper uses: elitism, tournament
//! selection, uniform crossover and per-gene mutation.
//!
//! Each generation's offspring are bred serially (preserving the RNG
//! stream) and then scored as one parallel batch through the shared
//! [`BatchEvaluator`], so the evolution trajectory is identical at any
//! thread count.

use boils_core::{
    BatchEvaluator, EvalRecord, OptimizationResult, RunControl, SequenceObjective, SequenceSpace,
    Termination,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Genetic-algorithm settings.
#[derive(Clone, Debug)]
pub struct GaConfig {
    /// Population size (clamped to the budget).
    pub population: usize,
    /// Number of elites copied unchanged each generation.
    pub elites: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Probability that an offspring undergoes crossover (else it clones a
    /// parent).
    pub crossover_rate: f64,
    /// Worker threads for scoring each generation's population.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 20,
            elites: 2,
            tournament: 3,
            mutation_rate: 0.1,
            crossover_rate: 0.9,
            threads: 1,
            seed: 0,
        }
    }
}

/// Runs the GA until the evaluation budget is exhausted.
///
/// ```no_run
/// use boils_circuits::{Benchmark, CircuitSpec};
/// use boils_core::{QorEvaluator, SequenceSpace};
/// use boils_baselines::{genetic_algorithm, GaConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let aig = CircuitSpec::new(Benchmark::Square).build();
/// let evaluator = QorEvaluator::new(&aig)?;
/// let result =
///     genetic_algorithm(&evaluator, SequenceSpace::paper(), 100, &GaConfig::default());
/// println!("best {:.4}", result.best_qor);
/// # Ok(())
/// # }
/// ```
pub fn genetic_algorithm<O: SequenceObjective>(
    objective: &O,
    space: SequenceSpace,
    budget: usize,
    config: &GaConfig,
) -> OptimizationResult {
    genetic_algorithm_controlled(objective, space, budget, config, &RunControl::new())
        .expect("uncontrolled run cannot be interrupted")
}

/// [`genetic_algorithm`] under a [`RunControl`]: a cancel or deadline
/// stops the evolution at the next evaluation boundary and returns
/// best-so-far; `None` only when nothing at all was evaluated.
pub fn genetic_algorithm_controlled<O: SequenceObjective>(
    objective: &O,
    space: SequenceSpace,
    budget: usize,
    config: &GaConfig,
    control: &RunControl,
) -> Option<OptimizationResult> {
    assert!(budget >= 2, "budget too small for a population");
    let engine = BatchEvaluator::new(config.threads);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let pop_size = config.population.clamp(2, budget);
    let mut history: Vec<EvalRecord> = Vec::with_capacity(budget);
    let mut quarantined: Vec<Vec<u8>> = Vec::new();

    // Initial population via Latin hypercube, scored as one batch.
    let mut seeds: Vec<Vec<u8>> = space.latin_hypercube(pop_size, &mut rng);
    seeds.truncate(budget);
    let outcome = engine.evaluate_controlled(objective, &seeds, control);
    quarantined.extend(outcome.quarantined.iter().cloned());
    let mut stop = outcome.stopped;
    let mut population: Vec<(Vec<u8>, f64)> = Vec::with_capacity(pop_size);
    for (tokens, point) in outcome.resolved_prefix(&seeds) {
        history.push(EvalRecord {
            tokens: tokens.clone(),
            point,
        });
        population.push((tokens, point.qor));
    }
    if history.is_empty() {
        return None;
    }

    while stop.is_none() && history.len() < budget {
        if let Some(reason) = control.stop_reason() {
            stop = Some(reason);
            break;
        }
        population.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite QoR"));
        let mut next: Vec<(Vec<u8>, f64)> = population
            .iter()
            .take(config.elites.min(population.len()))
            .cloned()
            .collect();
        // Breed the whole generation first (serial RNG), then score it as
        // one parallel batch.
        let brood = pop_size
            .saturating_sub(next.len())
            .min(budget - history.len());
        if brood == 0 {
            // Degenerate configs (elites ≥ population) would otherwise
            // spin without spending budget.
            break;
        }
        let mut offspring: Vec<Vec<u8>> = Vec::with_capacity(brood);
        for _ in 0..brood {
            let p1 = tournament(&population, config.tournament, &mut rng);
            let child = if rng.gen_bool(config.crossover_rate) {
                let p2 = tournament(&population, config.tournament, &mut rng);
                uniform_crossover(&population[p1].0, &population[p2].0, &mut rng)
            } else {
                population[p1].0.clone()
            };
            offspring.push(mutate(&space, &child, config.mutation_rate, &mut rng));
        }
        let outcome = engine.evaluate_controlled(objective, &offspring, control);
        quarantined.extend(outcome.quarantined.iter().cloned());
        for (mutated, point) in outcome.resolved_prefix(&offspring) {
            history.push(EvalRecord {
                tokens: mutated.clone(),
                point,
            });
            next.push((mutated, point.qor));
        }
        population = next;
        if outcome.stopped.is_some() {
            stop = outcome.stopped;
            break;
        }
    }
    let termination = stop.map(Termination::from).unwrap_or_default();
    let mut result = OptimizationResult::from_history_terminated(&space, history, termination);
    result.quarantined = quarantined;
    result.objective = objective.cost_name();
    Some(result)
}

fn tournament<R: Rng>(population: &[(Vec<u8>, f64)], k: usize, rng: &mut R) -> usize {
    let mut best = rng.gen_range(0..population.len());
    for _ in 1..k.max(1) {
        let cand = rng.gen_range(0..population.len());
        if population[cand].1 < population[best].1 {
            best = cand;
        }
    }
    best
}

fn uniform_crossover<R: Rng>(a: &[u8], b: &[u8], rng: &mut R) -> Vec<u8> {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| if rng.gen_bool(0.5) { x } else { y })
        .collect()
}

fn mutate<R: Rng>(space: &SequenceSpace, tokens: &[u8], rate: f64, rng: &mut R) -> Vec<u8> {
    tokens
        .iter()
        .map(|&t| {
            if rng.gen_bool(rate) {
                rng.gen_range(0..space.alphabet()) as u8
            } else {
                t
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use boils_aig::random_aig;
    use boils_core::QorEvaluator;

    #[test]
    fn ga_spends_exactly_the_budget() {
        let e = QorEvaluator::new(&random_aig(41, 8, 300, 3)).expect("ok");
        let r = genetic_algorithm(
            &e,
            SequenceSpace::new(5, 11),
            30,
            &GaConfig {
                population: 8,
                seed: 1,
                ..GaConfig::default()
            },
        );
        assert_eq!(r.num_evaluations(), 30);
    }

    #[test]
    fn ga_improves_over_its_initial_population() {
        let e = QorEvaluator::new(&random_aig(43, 8, 400, 3)).expect("ok");
        let r = genetic_algorithm(
            &e,
            SequenceSpace::new(6, 11),
            40,
            &GaConfig {
                population: 10,
                seed: 2,
                ..GaConfig::default()
            },
        );
        let initial_best = r.history[..10]
            .iter()
            .map(|h| h.point.qor)
            .fold(f64::INFINITY, f64::min);
        assert!(r.best_qor <= initial_best);
    }

    #[test]
    fn crossover_and_mutation_stay_in_space() {
        let space = SequenceSpace::new(10, 11);
        let mut rng = StdRng::seed_from_u64(3);
        let a = space.sample(&mut rng);
        let b = space.sample(&mut rng);
        for _ in 0..50 {
            let child = uniform_crossover(&a, &b, &mut rng);
            assert!(child
                .iter()
                .zip(a.iter().zip(&b))
                .all(|(&c, (&x, &y))| c == x || c == y));
            let m = mutate(&space, &child, 0.5, &mut rng);
            assert!(m.iter().all(|&t| (t as usize) < space.alphabet()));
        }
    }
}
