//! A uniform interface over every optimiser in the paper's comparison.

use crate::{
    genetic_algorithm_controlled, greedy_controlled, random_search_controlled,
    reinforcement_learning_controlled, GaConfig, RlAlgorithm, RlConfig, RlFeatures, RolloutCircuit,
};
use boils_core::{
    Boils, BoilsConfig, OptimizationResult, RunBoilsError, RunControl, Sbo, SboConfig,
    SequenceObjective, SequenceSpace, WarmStart,
};
use boils_gp::TrainConfig;

/// Every method of the paper's evaluation (Figure 3 top row columns).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Method {
    /// DRiLLS with PPO updates.
    DrillsPpo,
    /// DRiLLS with A2C updates.
    DrillsA2c,
    /// Graph-feature RL.
    GraphRl,
    /// Genetic algorithm.
    Ga,
    /// Random search.
    Rs,
    /// Greedy constructor.
    Greedy,
    /// Standard Bayesian optimisation.
    Sbo,
    /// The paper's contribution.
    Boils,
}

impl Method {
    /// All methods in the paper's column order.
    pub const ALL: [Method; 8] = [
        Method::DrillsPpo,
        Method::DrillsA2c,
        Method::GraphRl,
        Method::Ga,
        Method::Rs,
        Method::Greedy,
        Method::Sbo,
        Method::Boils,
    ];

    /// The paper's column label.
    pub fn name(self) -> &'static str {
        match self {
            Method::DrillsPpo => "DRiLLS (PPO)",
            Method::DrillsA2c => "DRiLLS (A2C)",
            Method::GraphRl => "Graph-RL",
            Method::Ga => "GA",
            Method::Rs => "RS",
            Method::Greedy => "Greedy",
            Method::Sbo => "SBO",
            Method::Boils => "BOiLS",
        }
    }

    /// A file-system friendly identifier.
    pub fn id(self) -> &'static str {
        match self {
            Method::DrillsPpo => "ppo",
            Method::DrillsA2c => "a2c",
            Method::GraphRl => "graphrl",
            Method::Ga => "ga",
            Method::Rs => "rs",
            Method::Greedy => "greedy",
            Method::Sbo => "sbo",
            Method::Boils => "boils",
        }
    }

    /// Parses an identifier (as printed by [`Method::id`]).
    pub fn from_id(id: &str) -> Option<Method> {
        Method::ALL.into_iter().find(|m| m.id() == id)
    }

    /// [`Method::from_id`] with a one-line diagnostic listing the valid
    /// ids — the shared validation used by both the experiment CLI and
    /// the daemon's job decoder.
    ///
    /// # Errors
    ///
    /// Returns a message naming every known id for unknown input.
    pub fn parse(id: &str) -> Result<Method, String> {
        Method::from_id(id).ok_or_else(|| {
            let known: Vec<&str> = Method::ALL.iter().map(|m| m.id()).collect();
            format!(
                "unknown method {id:?} (expected one of: {})",
                known.join(", ")
            )
        })
    }

    /// Whether this is one of the two sample-efficient BO methods (run at
    /// the smaller budget in the paper's protocol).
    pub fn is_bayesian(self) -> bool {
        matches!(self, Method::Sbo | Method::Boils)
    }

    /// Runs the method against an objective with a single worker thread.
    pub fn run<O: SequenceObjective + RolloutCircuit>(
        self,
        objective: &O,
        space: SequenceSpace,
        budget: usize,
        seed: u64,
    ) -> OptimizationResult {
        self.run_threaded(objective, space, budget, seed, 1)
    }

    /// Runs the method against an objective, spending black-box
    /// evaluations through the shared engine with `threads` workers.
    ///
    /// Budgets are spent as whole black-box evaluations; every method uses
    /// the same [`SequenceObjective`] and produces the same trace format,
    /// and each trajectory is thread-count invariant.
    pub fn run_threaded<O: SequenceObjective + RolloutCircuit>(
        self,
        objective: &O,
        space: SequenceSpace,
        budget: usize,
        seed: u64,
        threads: usize,
    ) -> OptimizationResult {
        self.run_batched(objective, space, budget, seed, threads, 1)
    }

    /// [`Method::run_threaded`] with a q-EI acquisition batch size for the
    /// BO methods: BOiLS and SBO propose `batch_size` candidates per
    /// iteration (constant liar) and evaluate them as one prefix-aware
    /// parallel batch. The other methods have no acquisition loop to batch
    /// and ignore the knob (their existing batching — GA generations,
    /// greedy sweeps, RS designs — already saturates the engine).
    pub fn run_batched<O: SequenceObjective + RolloutCircuit>(
        self,
        objective: &O,
        space: SequenceSpace,
        budget: usize,
        seed: u64,
        threads: usize,
        batch_size: usize,
    ) -> OptimizationResult {
        self.run_configured(objective, space, budget, seed, threads, batch_size, None)
    }

    /// [`Method::run_batched`] with a bounded-history surrogate window for
    /// the BO methods: `Some(w)` caps the GP training set at `w`
    /// observations with incumbent-pinned sliding-window eviction (see
    /// [`BoilsConfig::surrogate_window`]). The non-BO methods have no
    /// surrogate and ignore the knob.
    #[allow(clippy::too_many_arguments)]
    pub fn run_configured<O: SequenceObjective + RolloutCircuit>(
        self,
        objective: &O,
        space: SequenceSpace,
        budget: usize,
        seed: u64,
        threads: usize,
        batch_size: usize,
        surrogate_window: Option<usize>,
    ) -> OptimizationResult {
        self.run_controlled(
            objective,
            space,
            budget,
            seed,
            threads,
            batch_size,
            surrogate_window,
            &RunControl::new(),
        )
        .expect("uncontrolled run cannot be interrupted")
    }

    /// [`Method::run_configured`] under a [`RunControl`]: a cancel or
    /// deadline stops the method at the next evaluation boundary and
    /// returns best-so-far (an exact prefix of the uncancelled
    /// trajectory); `None` only when the control fired before a single
    /// evaluation completed.
    #[allow(clippy::too_many_arguments)]
    pub fn run_controlled<O: SequenceObjective + RolloutCircuit>(
        self,
        objective: &O,
        space: SequenceSpace,
        budget: usize,
        seed: u64,
        threads: usize,
        batch_size: usize,
        surrogate_window: Option<usize>,
        control: &RunControl,
    ) -> Option<OptimizationResult> {
        self.run_mo_controlled(
            objective,
            space,
            budget,
            seed,
            threads,
            batch_size,
            surrogate_window,
            false,
            control,
        )
    }

    /// [`Method::run_controlled`] with an opt-in multi-objective mode for
    /// the BO methods: BOiLS and SBO switch to the ParEGO random-weight
    /// Chebyshev acquisition over the objective's cost *vector* (see
    /// [`BoilsConfig::multi_objective`]). The non-BO methods have no
    /// acquisition to steer and ignore the flag — their
    /// [`OptimizationResult::pareto_front`] archive is still maintained.
    #[allow(clippy::too_many_arguments)]
    pub fn run_mo_controlled<O: SequenceObjective + RolloutCircuit>(
        self,
        objective: &O,
        space: SequenceSpace,
        budget: usize,
        seed: u64,
        threads: usize,
        batch_size: usize,
        surrogate_window: Option<usize>,
        multi_objective: bool,
        control: &RunControl,
    ) -> Option<OptimizationResult> {
        self.run_warm_mo_controlled(
            objective,
            space,
            budget,
            seed,
            threads,
            batch_size,
            surrogate_window,
            multi_objective,
            None,
            control,
        )
    }

    /// [`Method::run_mo_controlled`] with an opt-in cross-circuit
    /// [`WarmStart`] for BOiLS: donor sequences from a similar circuit's
    /// recorded history seed the initial design and the surrogate (see
    /// [`BoilsConfig::warm_start`]). The other methods have no surrogate
    /// to seed and ignore it; `None` is bit-identical to
    /// [`Method::run_mo_controlled`] for every method.
    #[allow(clippy::too_many_arguments)]
    pub fn run_warm_mo_controlled<O: SequenceObjective + RolloutCircuit>(
        self,
        objective: &O,
        space: SequenceSpace,
        budget: usize,
        seed: u64,
        threads: usize,
        batch_size: usize,
        surrogate_window: Option<usize>,
        multi_objective: bool,
        warm_start: Option<WarmStart>,
        control: &RunControl,
    ) -> Option<OptimizationResult> {
        match self {
            Method::Rs => {
                random_search_controlled(objective, space, budget, seed, threads, control)
            }
            Method::Greedy => greedy_controlled(objective, space, budget, threads, control),
            Method::Ga => genetic_algorithm_controlled(
                objective,
                space,
                budget,
                &GaConfig {
                    seed,
                    threads,
                    ..GaConfig::default()
                },
                control,
            ),
            Method::DrillsPpo => reinforcement_learning_controlled(
                objective,
                space,
                budget,
                &RlConfig {
                    algorithm: RlAlgorithm::Ppo,
                    features: RlFeatures::Stats,
                    seed,
                    ..RlConfig::default()
                },
                control,
            ),
            Method::DrillsA2c => reinforcement_learning_controlled(
                objective,
                space,
                budget,
                &RlConfig {
                    algorithm: RlAlgorithm::A2c,
                    features: RlFeatures::Stats,
                    seed,
                    ..RlConfig::default()
                },
                control,
            ),
            Method::GraphRl => reinforcement_learning_controlled(
                objective,
                space,
                budget,
                &RlConfig {
                    algorithm: RlAlgorithm::A2c,
                    features: RlFeatures::Graph,
                    seed,
                    ..RlConfig::default()
                },
                control,
            ),
            Method::Sbo => {
                let mut sbo = Sbo::new(SboConfig {
                    max_evaluations: budget,
                    initial_samples: initial_design(budget),
                    space,
                    seed,
                    threads,
                    batch_size,
                    surrogate_window,
                    multi_objective,
                    train: TrainConfig {
                        steps: 10,
                        ..TrainConfig::default()
                    },
                    ..SboConfig::default()
                });
                match sbo.run_with_control(objective, control) {
                    Ok(result) => Some(result),
                    Err(RunBoilsError::Interrupted(_)) => None,
                    Err(err) => panic!("SBO run failed: {err}"),
                }
            }
            Method::Boils => {
                let mut boils = Boils::new(BoilsConfig {
                    max_evaluations: budget,
                    initial_samples: initial_design(budget),
                    space,
                    seed,
                    threads,
                    batch_size,
                    surrogate_window,
                    multi_objective,
                    warm_start,
                    train: TrainConfig {
                        steps: 10,
                        ..TrainConfig::default()
                    },
                    ..BoilsConfig::default()
                });
                match boils.run_with_control(objective, control) {
                    Ok(result) => Some(result),
                    Err(RunBoilsError::Interrupted(_)) => None,
                    Err(err) => panic!("BOiLS run failed: {err}"),
                }
            }
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Initial design size: 20% of the budget, at least 4.
fn initial_design(budget: usize) -> usize {
    (budget / 5).clamp(4, budget.saturating_sub(1).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use boils_aig::random_aig;

    #[test]
    fn ids_round_trip() {
        for m in Method::ALL {
            assert_eq!(Method::from_id(m.id()), Some(m));
        }
        assert_eq!(Method::from_id("nope"), None);
    }

    #[test]
    fn every_method_respects_the_budget() {
        let evaluator = boils_core::QorEvaluator::new(&random_aig(61, 8, 250, 3)).expect("ok");
        let space = SequenceSpace::new(4, 11);
        for m in Method::ALL {
            let budget = if m == Method::Greedy { 22 } else { 12 };
            let r = m.run(&evaluator, space, budget, 0);
            assert_eq!(r.num_evaluations(), budget, "{m}");
        }
    }

    #[test]
    fn batched_bo_methods_respect_the_budget() {
        let evaluator = boils_core::QorEvaluator::new(&random_aig(61, 8, 250, 3)).expect("ok");
        let space = SequenceSpace::new(4, 11);
        for m in [Method::Sbo, Method::Boils] {
            let r = m.run_batched(&evaluator, space, 13, 0, 2, 4);
            assert_eq!(r.num_evaluations(), 13, "{m}");
        }
    }

    #[test]
    fn windowed_bo_methods_respect_the_budget() {
        let evaluator = boils_core::QorEvaluator::new(&random_aig(61, 8, 250, 3)).expect("ok");
        let space = SequenceSpace::new(4, 11);
        for m in [Method::Sbo, Method::Boils] {
            let r = m.run_configured(&evaluator, space, 14, 0, 1, 1, Some(5));
            assert_eq!(r.num_evaluations(), 14, "{m}");
        }
    }

    #[test]
    fn no_window_matches_run_batched() {
        let aig = random_aig(61, 8, 250, 3);
        let space = SequenceSpace::new(4, 11);
        for m in [Method::Sbo, Method::Boils] {
            let a_eval = boils_core::QorEvaluator::new(&aig).expect("ok");
            let b_eval = boils_core::QorEvaluator::new(&aig).expect("ok");
            let a = m.run_batched(&a_eval, space, 12, 1, 1, 1);
            let b = m.run_configured(&b_eval, space, 12, 1, 1, 1, None);
            assert_eq!(a.best_tokens, b.best_tokens, "{m}");
            assert_eq!(a.best_qor, b.best_qor, "{m}");
        }
    }

    #[test]
    fn batch_size_one_matches_run_threaded() {
        let aig = random_aig(61, 8, 250, 3);
        let space = SequenceSpace::new(4, 11);
        for m in [Method::Sbo, Method::Boils] {
            let a_eval = boils_core::QorEvaluator::new(&aig).expect("ok");
            let b_eval = boils_core::QorEvaluator::new(&aig).expect("ok");
            let a = m.run_threaded(&a_eval, space, 12, 1, 1);
            let b = m.run_batched(&b_eval, space, 12, 1, 1, 1);
            assert_eq!(a.best_tokens, b.best_tokens, "{m}");
            assert_eq!(a.best_qor, b.best_qor, "{m}");
        }
    }

    #[test]
    fn every_method_is_thread_count_invariant() {
        let aig = random_aig(61, 8, 250, 3);
        let space = SequenceSpace::new(4, 11);
        for m in Method::ALL {
            let budget = if m == Method::Greedy { 22 } else { 12 };
            let serial = boils_core::QorEvaluator::new(&aig).expect("ok");
            let parallel = boils_core::QorEvaluator::new(&aig).expect("ok");
            let a = m.run_threaded(&serial, space, budget, 1, 1);
            let b = m.run_threaded(&parallel, space, budget, 1, 8);
            assert_eq!(a.best_tokens, b.best_tokens, "{m}");
            assert_eq!(a.best_qor, b.best_qor, "{m}");
            assert_eq!(
                serial.num_evaluations(),
                parallel.num_evaluations(),
                "{m}: unique-evaluation accounting drifted with threads"
            );
        }
    }
}
