//! Property tests for the baselines: budget discipline, determinism and
//! in-space traces for arbitrary configurations.

use boils_aig::random_aig;
use boils_baselines::{
    genetic_algorithm, greedy, random_search, reinforcement_learning, GaConfig, RlAlgorithm,
    RlConfig, RlFeatures,
};
use boils_core::{QorEvaluator, SequenceSpace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn all_baselines_spend_exact_budgets_and_stay_in_space(
        seed in 0u64..50,
        len in 3usize..6,
        budget in 11usize..20,
    ) {
        let aig = random_aig(seed + 9000, 8, 250, 3);
        let Ok(evaluator) = QorEvaluator::new(&aig) else { return Ok(()); };
        let space = SequenceSpace::new(len, 11);

        // Thread counts vary per method on purpose: budgets and traces are
        // engine-parallelism invariant.
        let results = [
            random_search(&evaluator, space, budget, seed, 1 + (seed as usize % 4)),
            greedy(&evaluator, space, budget, 2),
            genetic_algorithm(&evaluator, space, budget, &GaConfig {
                population: 6,
                seed,
                threads: 3,
                ..GaConfig::default()
            }),
            reinforcement_learning(&evaluator, space, budget, &RlConfig {
                algorithm: RlAlgorithm::A2c,
                seed,
                ..RlConfig::default()
            }),
            reinforcement_learning(&evaluator, space, budget, &RlConfig {
                algorithm: RlAlgorithm::Ppo,
                features: RlFeatures::Graph,
                seed,
                ..RlConfig::default()
            }),
        ];
        for r in &results {
            prop_assert_eq!(r.num_evaluations(), budget);
            for rec in &r.history {
                prop_assert!(rec.tokens.iter().all(|&t| (t as usize) < 11));
                // Greedy evaluates growing prefixes; everyone else works at
                // full length.
                prop_assert!(rec.tokens.len() <= len);
                prop_assert!(rec.point.qor.is_finite());
            }
            // The reported best matches the trace minimum.
            let min = r.history.iter().map(|h| h.point.qor).fold(f64::INFINITY, f64::min);
            prop_assert!((r.best_qor - min).abs() < 1e-12);
        }
    }

    #[test]
    fn seeded_baselines_are_reproducible(
        seed in 0u64..50,
    ) {
        let aig = random_aig(seed + 12_000, 8, 250, 2);
        let Ok(e1) = QorEvaluator::new(&aig) else { return Ok(()); };
        let e2 = QorEvaluator::new(&aig).expect("same circuit");
        let space = SequenceSpace::new(4, 11);
        let a = genetic_algorithm(&e1, space, 14, &GaConfig { population: 5, seed, ..GaConfig::default() });
        let b = genetic_algorithm(&e2, space, 14, &GaConfig { population: 5, seed, ..GaConfig::default() });
        prop_assert_eq!(a.best_tokens, b.best_tokens);
        let ra = reinforcement_learning(&e1, space, 6, &RlConfig { seed, ..RlConfig::default() });
        let rb = reinforcement_learning(&e2, space, 6, &RlConfig { seed, ..RlConfig::default() });
        prop_assert_eq!(ra.best_tokens, rb.best_tokens);
    }
}
