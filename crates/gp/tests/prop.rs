//! Property tests for the GP stack: Cholesky correctness on random SPD
//! matrices, SSK kernel axioms, GP posterior consistency, and EI behaviour.

use boils_gp::{expected_improvement, Cholesky, Gp, Kernel, Matrix, SquaredExponential, SskKernel};
use proptest::prelude::*;

fn spd_from_seed(n: usize, vals: &[f64]) -> Matrix {
    // A = BᵀB + n·I is SPD for any B.
    let b = Matrix::from_fn(n, n, |i, j| vals[(i * n + j) % vals.len()]);
    let mut a = b.transpose().mul(&b);
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_solves_random_spd_systems(
        n in 1usize..8,
        vals in prop::collection::vec(-2.0f64..2.0, 1..64),
        rhs in prop::collection::vec(-5.0f64..5.0, 8),
    ) {
        let a = spd_from_seed(n, &vals);
        let c = Cholesky::new(&a, 0.0).expect("spd");
        let b: Vec<f64> = rhs[..n].to_vec();
        let x = c.solve(&b);
        let back = a.mul_vec(&x);
        for (u, v) in back.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-6, "Ax={u} b={v}");
        }
        // log|A| must be finite and consistent with the factor.
        prop_assert!(c.log_det().is_finite());
    }

    #[test]
    fn ssk_is_symmetric_and_cauchy_schwarz(
        s in prop::collection::vec(0u8..6, 1..10),
        t in prop::collection::vec(0u8..6, 1..10),
        ell in 1usize..4,
    ) {
        let k = SskKernel::new(ell).with_decays(0.7, 0.45).without_normalization();
        let kst = k.eval_raw(&s, &t);
        let kts = k.eval_raw(&t, &s);
        prop_assert!((kst - kts).abs() < 1e-9, "not symmetric");
        // Cauchy–Schwarz: k(s,t)² ≤ k(s,s)·k(t,t).
        let kss = k.eval_raw(&s, &s);
        let ktt = k.eval_raw(&t, &t);
        prop_assert!(kst * kst <= kss * ktt + 1e-9);
        prop_assert!(kss >= 0.0 && ktt >= 0.0);
    }

    #[test]
    fn normalised_ssk_is_bounded_by_one(
        s in prop::collection::vec(0u8..11, 1..12),
        t in prop::collection::vec(0u8..11, 1..12),
    ) {
        let k = SskKernel::new(4);
        let v = Kernel::<[u8]>::eval(&k, &s, &t);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "out of range: {v}");
        let same = Kernel::<[u8]>::eval(&k, &s, &s);
        prop_assert!((same - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gp_interpolates_and_calibrates(
        ys in prop::collection::vec(-3.0f64..3.0, 3..10),
    ) {
        let xs: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
        let gp = Gp::fit(SquaredExponential::new(1), xs.clone(), ys.clone(), 1e-8)
            .expect("spd");
        for (x, y) in xs.iter().zip(&ys) {
            let (mean, var) = gp.predict(x);
            prop_assert!((mean - y).abs() < 1e-2, "mean {mean} vs {y}");
            prop_assert!(var >= 0.0);
        }
        // Far from data, variance approaches the prior variance — on the
        // original scale that is the sample variance of the targets.
        let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
        let var_y = ys.iter().map(|v| (v - mean_y).powi(2)).sum::<f64>() / ys.len() as f64;
        let (_, far_var) = gp.predict(&vec![1e4]);
        prop_assert!(
            far_var > 0.5 * var_y.max(1e-12),
            "far variance {far_var} vs target variance {var_y}"
        );
    }

    #[test]
    fn cholesky_extension_matches_full_factorisation(
        n in 2usize..8,
        vals in prop::collection::vec(-2.0f64..2.0, 1..64),
    ) {
        // Factor the leading (n-1)×(n-1) block of a random SPD matrix,
        // extend by the last row/column, and compare against factoring
        // the full matrix directly.
        let a = spd_from_seed(n, &vals);
        let leading = Matrix::from_fn(n - 1, n - 1, |i, j| a[(i, j)]);
        let off: Vec<f64> = (0..n - 1).map(|i| a[(i, n - 1)]).collect();
        let extended = Cholesky::new(&leading, 1e-9)
            .expect("spd")
            .extend(&off, a[(n - 1, n - 1)])
            .expect("positive pivot");
        let direct = Cholesky::new(&a, 1e-9).expect("spd");
        for i in 0..n {
            for j in 0..=i {
                prop_assert!(
                    (extended.l()[(i, j)] - direct.l()[(i, j)]).abs() < 1e-10,
                    "L[{},{}]: {} vs {}", i, j, extended.l()[(i, j)], direct.l()[(i, j)]
                );
            }
        }
        prop_assert!((extended.log_det() - direct.log_det()).abs() < 1e-10);
    }

    #[test]
    fn incremental_gp_extension_matches_from_scratch_fit(
        seqs in prop::collection::vec(prop::collection::vec(0u8..11, 1..8), 3..9),
        ys in prop::collection::vec(-2.0f64..2.0, 9),
    ) {
        // Random sequence Grams under the SSK: growing the GP one
        // observation at a time must agree with a from-scratch fit to
        // ≤ 1e-10 in posterior mean, variance, and NLML.
        let ys = &ys[..seqs.len()];
        let split = 2;
        let mut incremental =
            Gp::fit(SskKernel::new(3), seqs[..split].to_vec(), ys[..split].to_vec(), 1e-4)
                .expect("spd");
        for i in split..seqs.len() {
            incremental = incremental.extend(seqs[i].clone(), ys[i]).expect("extend");
        }
        let scratch = Gp::fit(SskKernel::new(3), seqs.clone(), ys.to_vec(), 1e-4).expect("spd");
        for probe in &seqs {
            let (m_inc, v_inc) = incremental.predict(probe);
            let (m_full, v_full) = scratch.predict(probe);
            prop_assert!((m_inc - m_full).abs() < 1e-10, "mean {m_inc} vs {m_full}");
            prop_assert!((v_inc - v_full).abs() < 1e-10, "var {v_inc} vs {v_full}");
        }
        prop_assert!((incremental.nlml() - scratch.nlml()).abs() < 1e-10);
    }

    #[test]
    fn ei_is_nonnegative_and_monotone_in_mean(
        mean in -5.0f64..5.0,
        var in 0.0f64..10.0,
        best in -5.0f64..5.0,
    ) {
        let ei = expected_improvement(mean, var, best);
        prop_assert!(ei >= 0.0);
        let ei_better = expected_improvement(mean + 0.5, var, best);
        prop_assert!(ei_better >= ei - 1e-12, "EI not monotone in mean");
    }
}
