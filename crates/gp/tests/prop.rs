//! Property tests for the GP stack: Cholesky correctness on random SPD
//! matrices (extension *and* downdate), SSK kernel axioms, match-cached
//! warm-retrain bit-identity, GP posterior consistency, sliding-window
//! surrogate correctness, and EI behaviour.

use boils_gp::{
    expected_improvement, Cholesky, Gp, Kernel, Matrix, SquaredExponential, SskKernel, Surrogate,
    SurrogateConfig, TrainConfig,
};
use proptest::prelude::*;

fn spd_from_seed(n: usize, vals: &[f64]) -> Matrix {
    // A = BᵀB + n·I is SPD for any B.
    let b = Matrix::from_fn(n, n, |i, j| vals[(i * n + j) % vals.len()]);
    let mut a = b.transpose().mul(&b);
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_solves_random_spd_systems(
        n in 1usize..8,
        vals in prop::collection::vec(-2.0f64..2.0, 1..64),
        rhs in prop::collection::vec(-5.0f64..5.0, 8),
    ) {
        let a = spd_from_seed(n, &vals);
        let c = Cholesky::new(&a, 0.0).expect("spd");
        let b: Vec<f64> = rhs[..n].to_vec();
        let x = c.solve(&b);
        let back = a.mul_vec(&x);
        for (u, v) in back.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-6, "Ax={u} b={v}");
        }
        // log|A| must be finite and consistent with the factor.
        prop_assert!(c.log_det().is_finite());
    }

    #[test]
    fn ssk_is_symmetric_and_cauchy_schwarz(
        s in prop::collection::vec(0u8..6, 1..10),
        t in prop::collection::vec(0u8..6, 1..10),
        ell in 1usize..4,
    ) {
        let k = SskKernel::new(ell).with_decays(0.7, 0.45).without_normalization();
        let kst = k.eval_raw(&s, &t);
        let kts = k.eval_raw(&t, &s);
        prop_assert!((kst - kts).abs() < 1e-9, "not symmetric");
        // Cauchy–Schwarz: k(s,t)² ≤ k(s,s)·k(t,t).
        let kss = k.eval_raw(&s, &s);
        let ktt = k.eval_raw(&t, &t);
        prop_assert!(kst * kst <= kss * ktt + 1e-9);
        prop_assert!(kss >= 0.0 && ktt >= 0.0);
    }

    #[test]
    fn normalised_ssk_is_bounded_by_one(
        s in prop::collection::vec(0u8..11, 1..12),
        t in prop::collection::vec(0u8..11, 1..12),
    ) {
        let k = SskKernel::new(4);
        let v = Kernel::<[u8]>::eval(&k, &s, &t);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "out of range: {v}");
        let same = Kernel::<[u8]>::eval(&k, &s, &s);
        prop_assert!((same - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gp_interpolates_and_calibrates(
        ys in prop::collection::vec(-3.0f64..3.0, 3..10),
    ) {
        let xs: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
        let gp = Gp::fit(SquaredExponential::new(1), xs.clone(), ys.clone(), 1e-8)
            .expect("spd");
        for (x, y) in xs.iter().zip(&ys) {
            let (mean, var) = gp.predict(x);
            prop_assert!((mean - y).abs() < 1e-2, "mean {mean} vs {y}");
            prop_assert!(var >= 0.0);
        }
        // Far from data, variance approaches the prior variance — on the
        // original scale that is the sample variance of the targets.
        let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
        let var_y = ys.iter().map(|v| (v - mean_y).powi(2)).sum::<f64>() / ys.len() as f64;
        let (_, far_var) = gp.predict(&vec![1e4]);
        prop_assert!(
            far_var > 0.5 * var_y.max(1e-12),
            "far variance {far_var} vs target variance {var_y}"
        );
    }

    #[test]
    fn cholesky_extension_matches_full_factorisation(
        n in 2usize..8,
        vals in prop::collection::vec(-2.0f64..2.0, 1..64),
    ) {
        // Factor the leading (n-1)×(n-1) block of a random SPD matrix,
        // extend by the last row/column, and compare against factoring
        // the full matrix directly.
        let a = spd_from_seed(n, &vals);
        let leading = Matrix::from_fn(n - 1, n - 1, |i, j| a[(i, j)]);
        let off: Vec<f64> = (0..n - 1).map(|i| a[(i, n - 1)]).collect();
        let extended = Cholesky::new(&leading, 1e-9)
            .expect("spd")
            .extend(&off, a[(n - 1, n - 1)])
            .expect("positive pivot");
        let direct = Cholesky::new(&a, 1e-9).expect("spd");
        for i in 0..n {
            for j in 0..=i {
                prop_assert!(
                    (extended.l()[(i, j)] - direct.l()[(i, j)]).abs() < 1e-10,
                    "L[{},{}]: {} vs {}", i, j, extended.l()[(i, j)], direct.l()[(i, j)]
                );
            }
        }
        prop_assert!((extended.log_det() - direct.log_det()).abs() < 1e-10);
    }

    #[test]
    fn incremental_gp_extension_matches_from_scratch_fit(
        seqs in prop::collection::vec(prop::collection::vec(0u8..11, 1..8), 3..9),
        ys in prop::collection::vec(-2.0f64..2.0, 9),
    ) {
        // Random sequence Grams under the SSK: growing the GP one
        // observation at a time must agree with a from-scratch fit to
        // ≤ 1e-10 in posterior mean, variance, and NLML.
        let ys = &ys[..seqs.len()];
        let split = 2;
        let mut incremental =
            Gp::fit(SskKernel::new(3), seqs[..split].to_vec(), ys[..split].to_vec(), 1e-4)
                .expect("spd");
        for i in split..seqs.len() {
            incremental = incremental.extend(seqs[i].clone(), ys[i]).expect("extend");
        }
        let scratch = Gp::fit(SskKernel::new(3), seqs.clone(), ys.to_vec(), 1e-4).expect("spd");
        for probe in &seqs {
            let (m_inc, v_inc) = incremental.predict(probe);
            let (m_full, v_full) = scratch.predict(probe);
            prop_assert!((m_inc - m_full).abs() < 1e-10, "mean {m_inc} vs {m_full}");
            prop_assert!((v_inc - v_full).abs() < 1e-10, "var {v_inc} vs {v_full}");
        }
        prop_assert!((incremental.nlml() - scratch.nlml()).abs() < 1e-10);
    }

    #[test]
    fn cholesky_downdate_matches_refactorisation(
        n in 2usize..9,
        index in 0usize..9,
        vals in prop::collection::vec(-2.0f64..2.0, 1..64),
    ) {
        // Factor a random SPD matrix, downdate an arbitrary row/column,
        // and compare against factoring the reduced matrix directly: the
        // Givens restoration must agree to ≤ 1e-8.
        let index = index % n;
        let a = spd_from_seed(n, &vals);
        let full = Cholesky::new(&a, 1e-9).expect("spd");
        let down = full.downdate(index).expect("principal submatrix stays pd");
        let keep: Vec<usize> = (0..n).filter(|&i| i != index).collect();
        let reduced = Matrix::from_fn(n - 1, n - 1, |i, j| a[(keep[i], keep[j])]);
        let direct = Cholesky::new(&reduced, 1e-9).expect("spd");
        for i in 0..n - 1 {
            for j in 0..=i {
                prop_assert!(
                    (down.l()[(i, j)] - direct.l()[(i, j)]).abs() <= 1e-8,
                    "L[{},{}]: {} vs {}", i, j, down.l()[(i, j)], direct.l()[(i, j)]
                );
            }
        }
        prop_assert!((down.log_det() - direct.log_det()).abs() <= 1e-8);
    }

    #[test]
    fn warm_ssk_gram_is_bit_identical_to_cold_recomputation(
        seqs in prop::collection::vec(prop::collection::vec(0u8..11, 1..10), 2..7),
        tm in 0.05f64..1.0,
        tg in 0.05f64..1.0,
    ) {
        // The warm-retrain contract: a Gram fill through cached
        // MatchStates (at decays the cache has never seen) is bit-identical
        // to the full DP — including the self-similarity normalisers.
        let training_eval = |k: &SskKernel, s: &Vec<u8>, t: &Vec<u8>| {
            let (is, it) = (
                Kernel::<[u8]>::self_info(k, s),
                Kernel::<[u8]>::self_info(k, t),
            );
            Kernel::<[u8]>::eval_training(k, s, is, t, it)
        };
        let cold = SskKernel::new(4).with_decays(tm, tg);
        let warm = SskKernel::new(4).with_decays(0.8, 0.5).with_match_caching();
        // Prime the cache at different decays, then move to (tm, tg).
        for s in &seqs {
            for t in &seqs {
                let _ = training_eval(&warm, s, t);
            }
        }
        let mut warm = warm;
        Kernel::<[u8]>::set_params(&mut warm, &[tm, tg]);
        for s in &seqs {
            for t in &seqs {
                prop_assert_eq!(
                    training_eval(&cold, s, t).to_bits(),
                    training_eval(&warm, s, t).to_bits(),
                    "s={:?} t={:?}", s, t
                );
            }
        }
        let stats = warm.match_store().expect("store").stats();
        prop_assert!(stats.hits > 0, "second sweep never hit the cache");
    }

    #[test]
    fn gp_downdate_matches_scratch_fit_on_survivors(
        seqs in prop::collection::vec(prop::collection::vec(0u8..11, 2..8), 5..9),
        ys in prop::collection::vec(-2.0f64..2.0, 9),
        evict_seed in 0usize..1000,
    ) {
        // Downdating arbitrary rows in a random order must agree with a
        // from-scratch fit on the surviving points.
        let ys = &ys[..seqs.len()];
        let mut gp = Gp::fit(SskKernel::new(3), seqs.clone(), ys.to_vec(), 1e-4).expect("spd");
        let mut survivors: Vec<usize> = (0..seqs.len()).collect();
        let mut state = evict_seed;
        for _ in 0..seqs.len() - 3 {
            state = (state * 1103515245 + 12345) % (1 << 31);
            let victim = state % survivors.len();
            let (next, _) = gp.downdate(victim).expect("pd");
            gp = next;
            survivors.remove(victim);
        }
        let xs: Vec<Vec<u8>> = survivors.iter().map(|&i| seqs[i].clone()).collect();
        let yk: Vec<f64> = survivors.iter().map(|&i| ys[i]).collect();
        let scratch = Gp::fit(SskKernel::new(3), xs, yk, 1e-4).expect("spd");
        for probe in &seqs {
            let (m_d, v_d) = gp.predict(probe);
            let (m_s, v_s) = scratch.predict(probe);
            prop_assert!((m_d - m_s).abs() < 1e-6, "mean {} vs {}", m_d, m_s);
            prop_assert!((v_d - v_s).abs() < 1e-6, "var {} vs {}", v_d, v_s);
        }
    }

    #[test]
    fn windowed_surrogate_matches_scratch_fit_on_the_retained_window(
        window_choice in 0usize..3,
        stream in prop::collection::vec(
            (prop::collection::vec(0u8..11, 3..8), -2.0f64..2.0), 6..24),
    ) {
        // Sliding-window correctness over window sizes {4, 8, 16} and
        // whatever evict order the stream's targets induce (the pinned
        // incumbent shifts arbitrarily): after every update, the windowed
        // posterior equals a from-scratch GP fit on exactly the retained
        // window, and the incumbent is always retained.
        let window = [4usize, 8, 16][window_choice];
        let mut surrogate: Surrogate<SskKernel, Vec<u8>> = Surrogate::new(
            SskKernel::new(3),
            SurrogateConfig {
                noise: 1e-4,
                retrain_every: 1_000_000, // isolate the extend/forget path
                incremental: true,
                window: Some(window),
                train: TrainConfig { steps: 2, ..TrainConfig::default() },
            },
        );
        let mut best: Option<(usize, f64)> = None;
        for (i, (x, y)) in stream.iter().enumerate() {
            surrogate.observe(x.clone(), *y);
            if best.is_none_or(|(_, by)| *y > by) {
                best = Some((i, *y));
            }
            surrogate.maybe_retrain().expect("fit");
        }
        let retained = surrogate.window_indices().to_vec();
        prop_assert!(retained.len() <= window);
        let (best_idx, _) = best.expect("non-empty stream");
        prop_assert!(
            retained.contains(&best_idx),
            "incumbent {} evicted: {:?}", best_idx, retained
        );
        let gp = surrogate.gp().expect("fitted");
        let xs: Vec<Vec<u8>> = retained.iter().map(|&i| stream[i].0.clone()).collect();
        let ys: Vec<f64> = retained.iter().map(|&i| stream[i].1).collect();
        let scratch = Gp::fit(gp.kernel().clone(), xs, ys, 1e-4).expect("spd");
        for (probe, _) in stream.iter().take(6) {
            let (m_w, v_w) = gp.predict(probe);
            let (m_s, v_s) = scratch.predict(probe);
            prop_assert!((m_w - m_s).abs() < 1e-6, "mean {} vs {}", m_w, m_s);
            prop_assert!((v_w - v_s).abs() < 1e-6, "var {} vs {}", v_w, v_s);
        }
    }

    #[test]
    fn ei_is_nonnegative_and_monotone_in_mean(
        mean in -5.0f64..5.0,
        var in 0.0f64..10.0,
        best in -5.0f64..5.0,
    ) {
        let ei = expected_improvement(mean, var, best);
        prop_assert!(ei >= 0.0);
        let ei_better = expected_improvement(mean + 0.5, var, best);
        prop_assert!(ei_better >= ei - 1e-12, "EI not monotone in mean");
    }
}
