//! # boils-gp — Gaussian processes for sequence optimisation
//!
//! The probabilistic machinery of BOiLS: exact [GP regression](Gp) on top of
//! an in-crate dense [linear algebra layer](Matrix), the
//! [sub-sequence string kernel](SskKernel) of the paper's Section III-B1
//! (with the Table I semantics, validated against brute force), a
//! [squared-exponential kernel](SquaredExponential) for the SBO baseline,
//! projected-Adam hyperparameter training (paper Eq. 4) and the
//! [expected-improvement](expected_improvement) acquisition, plus the
//! batched q-EI machinery ([`ConstantLiar`] fantasy models and a
//! [Monte-Carlo q-EI estimate](qei_monte_carlo)).
//!
//! ## Example
//!
//! ```
//! use boils_gp::{expected_improvement, Gp, SskKernel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Black-box scores for three synthesis sequences (higher is better).
//! let seqs: Vec<Vec<u8>> = vec![vec![0, 1, 2], vec![2, 1, 0], vec![0, 0, 0]];
//! let scores = vec![0.8, 0.3, 0.5];
//! let gp = Gp::fit(SskKernel::new(3), seqs, scores, 1e-6)?;
//! let (mean, var) = gp.predict(&vec![0u8, 1, 1]);
//! let ei = expected_improvement(mean, var, 0.8);
//! assert!(ei >= 0.0);
//! # Ok(())
//! # }
//! ```

mod acquisition;
mod gp;
mod kernel;
mod linalg;
mod pareto;
mod qei;
mod ssk;
mod surrogate;

pub use crate::acquisition::{erf, expected_improvement, normal_cdf, normal_pdf};
pub use crate::gp::{sample_gaussian, standard_normal, Gp, TrainConfig, UpdateOutcome};
pub use crate::kernel::{Kernel, SquaredExponential};
pub use crate::linalg::{Cholesky, Matrix, NotPositiveDefiniteError};
pub use crate::pareto::{
    dominates, hypervolume_2d, hypervolume_improvement_2d, nondominated_indices, Scalarisation,
};
pub use crate::qei::{qei_monte_carlo, ConstantLiar};
pub use crate::ssk::{MatchState, MatchStore, MatchStoreStats, SskKernel};
pub use crate::surrogate::{Surrogate, SurrogateConfig, SurrogateDiagnostics};
