//! Minimal dense linear algebra: row-major matrices and Cholesky
//! factorisation — all the Gaussian process machinery needs.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
///
/// ```
/// use boils_gp::Matrix;
///
/// let mut m = Matrix::zeros(2, 2);
/// m[(0, 0)] = 1.0;
/// m[(1, 1)] = 2.0;
/// assert_eq!(m[(1, 1)], 2.0);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major closure.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        (0..self.rows)
            .map(|i| {
                let row = &self.data[i * self.cols..(i + 1) * self.cols];
                row.iter().zip(v).map(|(a, b)| a * b).sum()
            })
            .collect()
    }

    /// Matrix-matrix product.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows);
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Error: the matrix was not positive definite even after jitter.
#[derive(Debug, Clone, PartialEq)]
pub struct NotPositiveDefiniteError {
    /// The pivot index where factorisation failed.
    pub pivot: usize,
}

impl fmt::Display for NotPositiveDefiniteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is not positive definite at pivot {}", self.pivot)
    }
}

impl std::error::Error for NotPositiveDefiniteError {}

/// A lower-triangular Cholesky factor `A = L·Lᵀ`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Matrix,
    jitter: f64,
}

impl Cholesky {
    /// Factorises a symmetric positive-definite matrix, adding `jitter` to
    /// the diagonal (retrying with ×10 jitter up to three times).
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefiniteError`] if factorisation keeps failing.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn new(a: &Matrix, jitter: f64) -> Result<Cholesky, NotPositiveDefiniteError> {
        assert_eq!(a.rows(), a.cols(), "cholesky needs a square matrix");
        let mut eps = jitter;
        let mut last_err = NotPositiveDefiniteError { pivot: 0 };
        for _ in 0..4 {
            match Self::factor(a, eps) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    last_err = e;
                    eps = (eps * 10.0).max(1e-12);
                }
            }
        }
        Err(last_err)
    }

    fn factor(a: &Matrix, jitter: f64) -> Result<Cholesky, NotPositiveDefiniteError> {
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(NotPositiveDefiniteError { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l, jitter })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// The diagonal jitter that was actually added during factorisation
    /// (the requested value, escalated ×10 per retry if needed).
    pub fn effective_jitter(&self) -> f64 {
        self.jitter
    }

    /// Extends the factor of an `n×n` matrix `A` to the factor of
    ///
    /// ```text
    /// A' = [ A   b ]
    ///      [ bᵀ  c ]
    /// ```
    ///
    /// in `O(n²)` instead of refactorising in `O(n³)`. The new row is
    /// `l = L⁻¹ b`, `d = √(c + jitter − lᵀl)`, using the same effective
    /// jitter as the original factorisation — so when the extension
    /// succeeds, the result is bit-identical to factorising `A'` from
    /// scratch at that jitter (the leading block of a Cholesky factor only
    /// depends on the leading block of the matrix, and the arithmetic here
    /// mirrors `Cholesky::factor`'s last row exactly).
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefiniteError`] if the new diagonal pivot is
    /// non-positive (the caller should fall back to a full factorisation,
    /// which can escalate jitter).
    ///
    /// # Panics
    ///
    /// Panics if `off_diag.len()` differs from the current dimension.
    pub fn extend(
        &self,
        off_diag: &[f64],
        diag: f64,
    ) -> Result<Cholesky, NotPositiveDefiniteError> {
        let n = self.l.rows();
        assert_eq!(off_diag.len(), n, "off-diagonal block must have n entries");
        let row = self.solve_lower(off_diag);
        let mut pivot = diag + self.jitter;
        for &v in &row {
            pivot -= v * v;
        }
        if pivot <= 0.0 || !pivot.is_finite() {
            return Err(NotPositiveDefiniteError { pivot: n });
        }
        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..=i {
                l[(i, j)] = self.l[(i, j)];
            }
        }
        for (j, &v) in row.iter().enumerate() {
            l[(n, j)] = v;
        }
        l[(n, n)] = pivot.sqrt();
        Ok(Cholesky {
            l,
            jitter: self.jitter,
        })
    }

    /// Removes row and column `index` from the factored matrix in `O(n²)`:
    /// the factor of the `(n−1)×(n−1)` principal submatrix of `A` with that
    /// row/column deleted — the rank-1 *downdate* dual of
    /// [`Cholesky::extend`].
    ///
    /// Deleting row `index` of `L` leaves an `(n−1)×n` lower-Hessenberg
    /// matrix `H` with `H·Hᵀ` equal to the reduced matrix; a sweep of
    /// Givens rotations over column pairs `(j, j+1)` for `j ≥ index`
    /// restores lower-triangularity while preserving `H·Hᵀ` (rotations are
    /// orthogonal), so the result is a genuine Cholesky factor of the
    /// reduced matrix at the same effective jitter. Unlike `extend`, the
    /// restored factor agrees with a from-scratch factorisation only to
    /// rounding (the rotations reassociate the arithmetic) — ≤ 1e-8 under
    /// the property tests, not bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefiniteError`] if a restored diagonal pivot
    /// vanishes or goes non-finite (numerically semi-definite input); the
    /// caller should fall back to a full factorisation, mirroring the
    /// [`Cholesky::extend`] failure contract.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn downdate(&self, index: usize) -> Result<Cholesky, NotPositiveDefiniteError> {
        let n = self.l.rows();
        assert!(index < n, "downdate index {index} out of bounds for {n}");
        // Copy L without row `index`. Rows below it keep one entry past
        // their (new) diagonal, in column new-row-index + 1.
        let mut h = Matrix::zeros(n - 1, n);
        for i in 0..n {
            if i == index {
                continue;
            }
            let dst = if i < index { i } else { i - 1 };
            for j in 0..=i {
                h[(dst, j)] = self.l[(i, j)];
            }
        }
        // Givens sweep: zero the super-diagonal entry of each row from
        // `index` down, rotating the same column pair in every later row.
        for j in index..n.saturating_sub(1) {
            let a = h[(j, j)];
            let b = h[(j, j + 1)];
            let r = a.hypot(b);
            if r <= 0.0 || !r.is_finite() {
                return Err(NotPositiveDefiniteError { pivot: j });
            }
            let (c, s) = (a / r, b / r);
            h[(j, j)] = r;
            h[(j, j + 1)] = 0.0;
            for i in (j + 1)..(n - 1) {
                let (u, v) = (h[(i, j)], h[(i, j + 1)]);
                h[(i, j)] = c * u + s * v;
                h[(i, j + 1)] = c * v - s * u;
            }
        }
        let l = Matrix::from_fn(n - 1, n - 1, |i, j| if j <= i { h[(i, j)] } else { 0.0 });
        Ok(Cholesky {
            l,
            jitter: self.jitter,
        })
    }

    /// Drops the oldest observation — row/column 0 — in `O(n²)`: the
    /// sliding-window step for bounded-history surrogates (evict the
    /// front, [`Cholesky::extend`] at the back).
    ///
    /// # Errors
    ///
    /// See [`Cholesky::downdate`].
    pub fn shift_window(&self) -> Result<Cholesky, NotPositiveDefiniteError> {
        self.downdate(0)
    }

    /// Solves `A x = b` by forward/backward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let y = self.solve_lower(b);
        self.solve_upper(&y)
    }

    /// Solves `L y = b`.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, &yk) in y[..i].iter().enumerate() {
                sum -= self.l[(i, k)] * yk;
            }
            y[i] = sum / self.l[(i, i)];
        }
        y
    }

    /// Solves `Lᵀ x = y`.
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(y.len(), n);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l[(k, i)] * xk;
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// `log |A| = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I is symmetric positive definite.
        let b = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64 * 0.3 - 1.0);
        let mut a = b.transpose().mul(&b);
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        a
    }

    #[test]
    fn cholesky_reconstructs_matrix() {
        let a = spd3();
        let c = Cholesky::new(&a, 0.0).expect("spd");
        let rebuilt = c.l().mul(&c.l().transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((rebuilt[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn solve_inverts() {
        let a = spd3();
        let c = Cholesky::new(&a, 0.0).expect("spd");
        let b = vec![1.0, -2.0, 0.5];
        let x = c.solve(&b);
        let back = a.mul_vec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    #[test]
    fn log_det_matches_identity() {
        let c = Cholesky::new(&Matrix::identity(5), 0.0).expect("identity is spd");
        assert!(c.log_det().abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let mut a = Matrix::identity(2);
        a[(0, 0)] = -5.0;
        assert!(Cholesky::new(&a, 1e-9).is_err());
    }

    #[test]
    fn jitter_rescues_near_singular() {
        // Rank-1 matrix: singular, but PSD — jitter makes it PD.
        let a = Matrix::from_fn(3, 3, |_, _| 1.0);
        assert!(Cholesky::new(&a, 1e-9).is_ok());
    }

    #[test]
    fn extension_matches_from_scratch_factorisation() {
        // Build a 5×5 SPD matrix, factor its leading 4×4 block, then
        // extend by the last row/column and compare against factoring the
        // whole matrix directly: bit-identical when no jitter retry fires.
        let b = Matrix::from_fn(5, 5, |i, j| ((i * 5 + j) as f64 * 0.17).sin());
        let mut a = b.transpose().mul(&b);
        for i in 0..5 {
            a[(i, i)] += 2.0;
        }
        let leading = Matrix::from_fn(4, 4, |i, j| a[(i, j)]);
        let off: Vec<f64> = (0..4).map(|i| a[(i, 4)]).collect();
        let extended = Cholesky::new(&leading, 1e-9)
            .expect("spd")
            .extend(&off, a[(4, 4)])
            .expect("pivot stays positive");
        let direct = Cholesky::new(&a, 1e-9).expect("spd");
        for i in 0..5 {
            for j in 0..=i {
                assert_eq!(
                    extended.l()[(i, j)],
                    direct.l()[(i, j)],
                    "L[{i},{j}] diverged"
                );
            }
        }
        assert_eq!(extended.effective_jitter(), direct.effective_jitter());
    }

    #[test]
    fn extension_rejects_pivot_breaking_updates() {
        let a = Matrix::identity(3);
        let c = Cholesky::new(&a, 0.0).expect("spd");
        // New column makes the matrix singular: [1,0,0] with diag 1 is the
        // first basis vector repeated.
        assert!(c.extend(&[1.0, 0.0, 0.0], 1.0).is_err());
        assert!(c.extend(&[0.3, 0.2, 0.1], 2.0).is_ok());
    }

    /// A reproducible SPD matrix for the downdate tests.
    fn spd(n: usize, seed: u64) -> Matrix {
        let b = Matrix::from_fn(n, n, |i, j| {
            (((i * n + j) as f64 + seed as f64) * 0.37).sin()
        });
        let mut a = b.transpose().mul(&b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn downdate_matches_refactorisation_at_every_index() {
        let n = 6;
        let a = spd(n, 3);
        let full = Cholesky::new(&a, 1e-9).expect("spd");
        for drop in 0..n {
            let keep: Vec<usize> = (0..n).filter(|&i| i != drop).collect();
            let reduced = Matrix::from_fn(n - 1, n - 1, |i, j| a[(keep[i], keep[j])]);
            let direct = Cholesky::new(&reduced, 1e-9).expect("spd");
            let down = full.downdate(drop).expect("principal submatrix stays pd");
            for i in 0..n - 1 {
                for j in 0..=i {
                    assert!(
                        (down.l()[(i, j)] - direct.l()[(i, j)]).abs() < 1e-10,
                        "drop {drop}: L[{i},{j}] {} vs {}",
                        down.l()[(i, j)],
                        direct.l()[(i, j)]
                    );
                }
            }
            assert_eq!(down.effective_jitter(), direct.effective_jitter());
        }
    }

    #[test]
    fn shift_window_drops_the_oldest_row() {
        let a = spd(5, 11);
        let full = Cholesky::new(&a, 1e-9).expect("spd");
        let shifted = full.shift_window().expect("pd");
        let manual = full.downdate(0).expect("pd");
        for i in 0..4 {
            for j in 0..=i {
                assert_eq!(shifted.l()[(i, j)], manual.l()[(i, j)]);
            }
        }
    }

    #[test]
    fn downdate_undoes_extend() {
        // Extending by a row and then downdating it must recover the
        // original factor (the last row/column removal needs no rotation,
        // so this direction is exact).
        let a = spd(4, 7);
        let base = Cholesky::new(&a, 1e-9).expect("spd");
        let off = vec![0.3, -0.2, 0.5, 0.1];
        let grown = base.extend(&off, 6.0).expect("pd");
        let back = grown.downdate(4).expect("pd");
        for i in 0..4 {
            for j in 0..=i {
                assert_eq!(back.l()[(i, j)], base.l()[(i, j)], "L[{i},{j}]");
            }
        }
    }

    #[test]
    fn downdate_solves_the_reduced_system() {
        let n = 7;
        let a = spd(n, 19);
        let full = Cholesky::new(&a, 0.0).expect("spd");
        let drop = 3;
        let keep: Vec<usize> = (0..n).filter(|&i| i != drop).collect();
        let down = full.downdate(drop).expect("pd");
        let b: Vec<f64> = keep.iter().map(|&i| (i as f64 * 0.7).cos()).collect();
        let x = down.solve(&b);
        // Check A' x = b against the reduced matrix directly.
        for (row, &i) in keep.iter().enumerate() {
            let lhs: f64 = keep
                .iter()
                .enumerate()
                .map(|(col, &j)| a[(i, j)] * x[col])
                .sum();
            assert!(
                (lhs - b[row]).abs() < 1e-8,
                "row {row}: {lhs} vs {}",
                b[row]
            );
        }
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_fn(2, 3, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let c = a.mul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        // Row 0 of a = [0,1,2]; col 0 of b = [0,2,4] → 0+2+8 = 10.
        assert_eq!(c[(0, 0)], 10.0);
        assert_eq!(a.transpose()[(2, 1)], a[(1, 2)]);
    }
}
