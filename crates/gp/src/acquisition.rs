//! Acquisition functions: expected improvement (EI) and the Gaussian
//! special functions it needs.

/// The standard normal probability density.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// The standard normal cumulative distribution, via the Abramowitz–Stegun
/// rational approximation of `erf` (absolute error < 1.5e-7).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// The error function (Abramowitz–Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Expected improvement for **maximisation**:
/// `EI(x) = E[max(g(x) − best, 0)]` under `g(x) ~ N(mean, var)`.
///
/// Returns 0 when the predictive variance vanishes and the mean does not
/// beat `best`.
///
/// ```
/// use boils_gp::expected_improvement;
///
/// // A point predicted well above the incumbent has high EI …
/// let promising = expected_improvement(1.0, 0.04, 0.0);
/// // … a point predicted below it but uncertain still has some.
/// let uncertain = expected_improvement(-0.5, 1.0, 0.0);
/// let hopeless = expected_improvement(-0.5, 1e-12, 0.0);
/// assert!(promising > uncertain);
/// assert!(uncertain > hopeless);
/// assert_eq!(hopeless, 0.0);
/// ```
pub fn expected_improvement(mean: f64, var: f64, best: f64) -> f64 {
    let std = var.max(0.0).sqrt();
    if std < 1e-12 {
        return (mean - best).max(0.0);
    }
    let z = (mean - best) / std;
    std * (z * normal_cdf(z) + normal_pdf(z))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204999),
            (1.0, 0.8427008),
            (2.0, 0.9953223),
            (-1.0, -0.8427008),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 1e-5, "erf({x})");
        }
    }

    #[test]
    fn cdf_is_monotone_and_symmetric() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!(normal_cdf(1.0) > normal_cdf(0.5));
        assert!((normal_cdf(-1.3) + normal_cdf(1.3) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn ei_matches_closed_form_reference() {
        // For mean=0, var=1, best=0: EI = φ(0) = 1/√(2π).
        let want = 1.0 / (2.0 * std::f64::consts::PI).sqrt();
        assert!((expected_improvement(0.0, 1.0, 0.0) - want).abs() < 1e-7);
    }

    #[test]
    fn ei_increases_with_mean_and_variance() {
        let base = expected_improvement(0.0, 1.0, 0.5);
        assert!(expected_improvement(0.5, 1.0, 0.5) > base);
        assert!(expected_improvement(0.0, 4.0, 0.5) > base);
    }

    #[test]
    fn ei_is_nonnegative() {
        for mean in [-3.0, -1.0, 0.0, 2.0] {
            for var in [0.0, 0.1, 1.0, 10.0] {
                assert!(expected_improvement(mean, var, 1.0) >= 0.0);
            }
        }
    }
}
