//! Exact Gaussian-process regression with marginal-likelihood
//! hyperparameter training by projected Adam (paper Eq. 4 and the
//! `θ ← Proj_{[0,1]²}(θ − η∇J)` update of Section III-B1).

use rand::Rng;

use crate::kernel::Kernel;
use crate::linalg::{Cholesky, Matrix, NotPositiveDefiniteError};

/// Configuration for [`Gp::fit_with_adam`].
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of Adam steps.
    pub steps: usize,
    /// Adam step size η.
    pub learning_rate: f64,
    /// Adam first-moment decay.
    pub beta1: f64,
    /// Adam second-moment decay.
    pub beta2: f64,
    /// Finite-difference step for ∇J(θ).
    pub fd_epsilon: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            steps: 30,
            learning_rate: 0.05,
            beta1: 0.9,
            beta2: 0.999,
            fd_epsilon: 1e-4,
        }
    }
}

/// A fitted Gaussian process.
///
/// Targets are standardised internally; predictions are reported on the
/// original scale.
///
/// ```
/// use boils_gp::{Gp, SquaredExponential};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let xs: Vec<Vec<f64>> = (0..7).map(|i| vec![i as f64]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 0.9).sin()).collect();
/// let gp = Gp::fit(SquaredExponential::new(1), xs, ys, 1e-6)?;
/// let (mean, var) = gp.predict(&vec![3.5]);
/// assert!((mean - (3.5f64 * 0.9).sin()).abs() < 0.1);
/// assert!(var >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Gp<K, X> {
    kernel: K,
    noise: f64,
    x: Vec<X>,
    /// Per-input [`Kernel::self_info`] summaries, aligned with `x` — cached
    /// once at fit time so the prediction hot path (thousands of
    /// acquisition probes per BO iteration) never recomputes them.
    infos: Vec<f64>,
    alpha: Vec<f64>,
    chol: Cholesky,
    /// Raw (unstandardised) targets — kept so [`Gp::extend`] can restandardise
    /// after appending an observation.
    y_raw: Vec<f64>,
    y: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

/// Fills the noise-augmented Gram matrix symmetrically: each off-diagonal
/// pair is evaluated once and mirrored, and per-point summaries are
/// computed once instead of inside every pair — for a normalised string
/// kernel this cuts an `n²` fill from `3n²` to `n(n+1)/2 + n` DP runs.
/// Pairs go through [`Kernel::eval_training`], so kernels with a
/// per-pair-structure cache serve repeated fills (every Adam step of a
/// retrain) from it.
fn build_gram<K, X>(kernel: &K, x: &[X], infos: &[f64], noise: f64) -> Matrix
where
    K: Kernel<X>,
{
    let n = x.len();
    let mut gram = Matrix::zeros(n, n);
    for i in 0..n {
        gram[(i, i)] = kernel.eval_training(&x[i], infos[i], &x[i], infos[i]) + noise;
        for j in (i + 1)..n {
            let v = kernel.eval_training(&x[i], infos[i], &x[j], infos[j]);
            gram[(i, j)] = v;
            gram[(j, i)] = v;
        }
    }
    gram
}

/// Which path produced an incrementally-updated GP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// The `O(n²)` factor extension/downdate succeeded.
    Incremental,
    /// The incremental update failed numerically; the model came from the
    /// `O(n³)` full-refit fallback (which can escalate jitter).
    Refitted,
}

fn mean_std(y: &[f64]) -> (f64, f64) {
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    let variance = y.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / y.len() as f64;
    (mean, variance.sqrt().max(1e-9))
}

impl<K, X> Gp<K, X>
where
    K: Kernel<X>,
{
    /// Fits the GP to data with fixed hyperparameters.
    ///
    /// # Errors
    ///
    /// Returns an error if the Gram matrix is not positive definite even
    /// after jitter.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` lengths differ or the data set is empty.
    pub fn fit(
        kernel: K,
        x: Vec<X>,
        y: Vec<f64>,
        noise: f64,
    ) -> Result<Gp<K, X>, NotPositiveDefiniteError> {
        assert_eq!(x.len(), y.len(), "inputs and targets must pair up");
        assert!(!x.is_empty(), "cannot fit a GP to no data");
        let (y_mean, y_std) = mean_std(&y);
        let standardised: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();
        let infos: Vec<f64> = x.iter().map(|xi| kernel.self_info(xi)).collect();
        let gram = build_gram(&kernel, &x, &infos, noise);
        let chol = Cholesky::new(&gram, 1e-9)?;
        let alpha = chol.solve(&standardised);
        Ok(Gp {
            kernel,
            noise,
            x,
            infos,
            alpha,
            chol,
            y_raw: y,
            y: standardised,
            y_mean,
            y_std,
        })
    }

    /// Incorporates one new observation in `O(n²)` instead of refitting
    /// from scratch in `O(n³)`: the stored Cholesky factor is extended by
    /// one row ([`Cholesky::extend`]), only `n + 1` new kernel values are
    /// computed, and the targets are restandardised (standardisation and
    /// `α = K⁻¹y` depend on every observation, but both are `O(n²)` given
    /// the factor).
    ///
    /// With unchanged hyperparameters the result is numerically identical
    /// to `Gp::fit` on the concatenated data — bit-identical whenever the
    /// extension's pivot succeeds at the stored factor's effective jitter.
    /// If the pivot fails, this falls back to a full refit (which can
    /// escalate jitter).
    ///
    /// # Errors
    ///
    /// Returns an error only if the fallback full refit also fails.
    pub fn extend(self, x_new: X, y_new: f64) -> Result<Gp<K, X>, NotPositiveDefiniteError> {
        self.extend_with_outcome(x_new, y_new).map(|(gp, _)| gp)
    }

    /// [`Gp::extend`], additionally reporting which path ran:
    /// [`UpdateOutcome::Incremental`] for the `O(n²)` factor extension,
    /// [`UpdateOutcome::Refitted`] when the extension's pivot failed and
    /// the `O(n³)` full-refit fallback (which can escalate jitter)
    /// produced the model instead. Callers tracking surrogate health
    /// (e.g. [`crate::SurrogateDiagnostics`]) count the fallbacks.
    ///
    /// # Errors
    ///
    /// Returns an error only if the fallback full refit also fails.
    pub fn extend_with_outcome(
        mut self,
        x_new: X,
        y_new: f64,
    ) -> Result<(Gp<K, X>, UpdateOutcome), NotPositiveDefiniteError> {
        let info_new = self.kernel.self_info(&x_new);
        // `x_new` joins the training set: these pairs recur in the next
        // retrain's Gram fills, so route them through the training path.
        let off_diag: Vec<f64> = self
            .x
            .iter()
            .zip(&self.infos)
            .map(|(xi, &ii)| self.kernel.eval_training(xi, ii, &x_new, info_new))
            .collect();
        let diag = self
            .kernel
            .eval_training(&x_new, info_new, &x_new, info_new)
            + self.noise;
        match self.chol.extend(&off_diag, diag) {
            Ok(chol) => {
                self.x.push(x_new);
                self.infos.push(info_new);
                self.y_raw.push(y_new);
                let (y_mean, y_std) = mean_std(&self.y_raw);
                let standardised: Vec<f64> =
                    self.y_raw.iter().map(|v| (v - y_mean) / y_std).collect();
                let alpha = chol.solve(&standardised);
                Ok((
                    Gp {
                        chol,
                        alpha,
                        y: standardised,
                        y_mean,
                        y_std,
                        ..self
                    },
                    UpdateOutcome::Incremental,
                ))
            }
            Err(_) => {
                let Gp {
                    kernel,
                    noise,
                    mut x,
                    mut y_raw,
                    ..
                } = self;
                x.push(x_new);
                y_raw.push(y_new);
                Gp::fit(kernel, x, y_raw, noise).map(|gp| (gp, UpdateOutcome::Refitted))
            }
        }
    }

    /// Removes the training point at `index` in `O(n²)` instead of
    /// refitting the reduced data set in `O(n³)`: the stored factor is
    /// downdated ([`Cholesky::downdate`]), the point's input/summary/target
    /// are dropped, and the remaining targets are restandardised. The dual
    /// of [`Gp::extend`] — together they give a sliding-window surrogate
    /// whose per-step cost is bounded by the window, not the history.
    ///
    /// The downdated model agrees with [`Gp::fit`] on the retained points
    /// to rounding (the Givens rotations reassociate the arithmetic; see
    /// [`Cholesky::downdate`]), so unlike `extend` this path is *not*
    /// bit-identical to a from-scratch fit. If the downdate fails
    /// numerically, falls back to a full refit on the retained points.
    ///
    /// # Errors
    ///
    /// Returns an error only if the fallback full refit also fails.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds or only one training point
    /// remains.
    pub fn downdate(
        mut self,
        index: usize,
    ) -> Result<(Gp<K, X>, UpdateOutcome), NotPositiveDefiniteError> {
        assert!(index < self.x.len(), "downdate index out of bounds");
        assert!(self.x.len() > 1, "cannot downdate the last training point");
        match self.chol.downdate(index) {
            Ok(chol) => {
                self.x.remove(index);
                self.infos.remove(index);
                self.y_raw.remove(index);
                let (y_mean, y_std) = mean_std(&self.y_raw);
                let standardised: Vec<f64> =
                    self.y_raw.iter().map(|v| (v - y_mean) / y_std).collect();
                let alpha = chol.solve(&standardised);
                Ok((
                    Gp {
                        chol,
                        alpha,
                        y: standardised,
                        y_mean,
                        y_std,
                        ..self
                    },
                    UpdateOutcome::Incremental,
                ))
            }
            Err(_) => {
                let Gp {
                    kernel,
                    noise,
                    mut x,
                    mut y_raw,
                    ..
                } = self;
                x.remove(index);
                y_raw.remove(index);
                Gp::fit(kernel, x, y_raw, noise).map(|gp| (gp, UpdateOutcome::Refitted))
            }
        }
    }

    /// Fits hyperparameters by minimising the negative log marginal
    /// likelihood with projected Adam (finite-difference gradients), then
    /// fits the GP at the optimum.
    ///
    /// # Errors
    ///
    /// Returns an error if no hyperparameter setting yields a positive
    /// definite Gram matrix.
    pub fn fit_with_adam(
        mut kernel: K,
        x: Vec<X>,
        y: Vec<f64>,
        noise: f64,
        config: &TrainConfig,
    ) -> Result<Gp<K, X>, NotPositiveDefiniteError> {
        let bounds = kernel.param_bounds();
        let mut params = kernel.params();
        project(&mut params, &bounds);
        let y_for_nlml = standardise(&y);

        let objective = |kernel: &mut K, p: &[f64]| -> Option<f64> {
            kernel.set_params(p);
            nlml(kernel, &x, &y_for_nlml, noise)
        };

        let mut m = vec![0.0; params.len()];
        let mut v = vec![0.0; params.len()];
        let mut best_params = params.clone();
        let mut best_obj = objective(&mut kernel, &params).unwrap_or(f64::INFINITY);
        for step in 1..=config.steps {
            // Central finite differences, clipped at the box bounds.
            let mut grad = vec![0.0; params.len()];
            for d in 0..params.len() {
                let h = config.fd_epsilon;
                let mut lo = params.clone();
                let mut hi = params.clone();
                lo[d] = (lo[d] - h).max(bounds[d].0);
                hi[d] = (hi[d] + h).min(bounds[d].1);
                let span = hi[d] - lo[d];
                if span <= 0.0 {
                    continue;
                }
                let f_lo = objective(&mut kernel, &lo).unwrap_or(f64::INFINITY);
                let f_hi = objective(&mut kernel, &hi).unwrap_or(f64::INFINITY);
                if f_lo.is_finite() && f_hi.is_finite() {
                    grad[d] = (f_hi - f_lo) / span;
                }
            }
            for d in 0..params.len() {
                m[d] = config.beta1 * m[d] + (1.0 - config.beta1) * grad[d];
                v[d] = config.beta2 * v[d] + (1.0 - config.beta2) * grad[d] * grad[d];
                let m_hat = m[d] / (1.0 - config.beta1.powi(step as i32));
                let v_hat = v[d] / (1.0 - config.beta2.powi(step as i32));
                params[d] -= config.learning_rate * m_hat / (v_hat.sqrt() + 1e-8);
            }
            project(&mut params, &bounds);
            let obj = objective(&mut kernel, &params).unwrap_or(f64::INFINITY);
            if obj < best_obj {
                best_obj = obj;
                best_params.copy_from_slice(&params);
            }
        }
        kernel.set_params(&best_params);
        Gp::fit(kernel, x, y, noise)
    }

    /// Posterior mean and variance at a test input.
    ///
    /// The test point's [`Kernel::self_info`] summary is computed once and
    /// the training points' summaries are reused from fit time, so a
    /// normalised string kernel runs one DP per training point here rather
    /// than three.
    pub fn predict(&self, x_star: &X) -> (f64, f64) {
        let info_star = self.kernel.self_info(x_star);
        let k_star: Vec<f64> = self
            .x
            .iter()
            .zip(&self.infos)
            .map(|(xi, &ii)| self.kernel.eval_with_info(xi, ii, x_star, info_star))
            .collect();
        let mean_std: f64 = k_star.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        let v = self.chol.solve_lower(&k_star);
        let k_ss = self
            .kernel
            .eval_with_info(x_star, info_star, x_star, info_star)
            + self.noise;
        let var_std = (k_ss - v.iter().map(|x| x * x).sum::<f64>()).max(0.0);
        (
            mean_std * self.y_std + self.y_mean,
            var_std * self.y_std * self.y_std,
        )
    }

    /// The negative log marginal likelihood of the fitted model (on the
    /// standardised targets, up to the constant term).
    pub fn nlml(&self) -> f64 {
        0.5 * self.chol.log_det()
            + 0.5
                * self
                    .y
                    .iter()
                    .zip(&self.alpha)
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
    }

    /// The fitted kernel.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// The training inputs.
    pub fn train_inputs(&self) -> &[X] {
        &self.x
    }

    /// Draws a joint posterior sample at the given test inputs.
    ///
    /// # Errors
    ///
    /// Returns an error if the posterior covariance fails to factorise.
    pub fn sample_posterior<R: Rng>(
        &self,
        xs: &[X],
        rng: &mut R,
    ) -> Result<Vec<f64>, NotPositiveDefiniteError> {
        let n = xs.len();
        let means: Vec<f64> = xs.iter().map(|x| self.predict(x).0).collect();
        // Joint posterior covariance: K** − K*ᵀ K⁻¹ K*.
        let cov = Matrix::from_fn(n, n, |i, j| {
            let kij = self.kernel.eval(&xs[i], &xs[j]);
            let ki: Vec<f64> = self
                .x
                .iter()
                .map(|xt| self.kernel.eval(xt, &xs[i]))
                .collect();
            let kj: Vec<f64> = self
                .x
                .iter()
                .map(|xt| self.kernel.eval(xt, &xs[j]))
                .collect();
            let vi = self.chol.solve_lower(&ki);
            let vj = self.chol.solve_lower(&kj);
            let reduction: f64 = vi.iter().zip(&vj).map(|(a, b)| a * b).sum();
            (kij - reduction) * self.y_std * self.y_std
        });
        let sample = sample_gaussian(&means, &cov, rng)?;
        Ok(sample)
    }
}

fn standardise(y: &[f64]) -> Vec<f64> {
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    let var = y.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / y.len() as f64;
    let std = var.sqrt().max(1e-9);
    y.iter().map(|v| (v - mean) / std).collect()
}

fn project(params: &mut [f64], bounds: &[(f64, f64)]) {
    for (p, &(lo, hi)) in params.iter_mut().zip(bounds) {
        *p = p.clamp(lo, hi);
    }
}

/// Negative log marginal likelihood for a kernel on standardised targets.
fn nlml<K, X>(kernel: &K, x: &[X], y: &[f64], noise: f64) -> Option<f64>
where
    K: Kernel<X>,
{
    let infos: Vec<f64> = x.iter().map(|xi| kernel.self_info(xi)).collect();
    let gram = build_gram(kernel, x, &infos, noise);
    let chol = Cholesky::new(&gram, 1e-9).ok()?;
    let alpha = chol.solve(y);
    Some(0.5 * chol.log_det() + 0.5 * y.iter().zip(&alpha).map(|(a, b)| a * b).sum::<f64>())
}

/// Draws one sample from `N(mean, cov)`.
///
/// # Errors
///
/// Returns an error if `cov` cannot be factorised even with jitter.
pub fn sample_gaussian<R: Rng>(
    mean: &[f64],
    cov: &Matrix,
    rng: &mut R,
) -> Result<Vec<f64>, NotPositiveDefiniteError> {
    let chol = Cholesky::new(cov, 1e-8)?;
    let z: Vec<f64> = (0..mean.len()).map(|_| standard_normal(rng)).collect();
    let correlated = chol.l().mul_vec(&z);
    Ok(mean.iter().zip(&correlated).map(|(m, c)| m + c).collect())
}

/// A standard normal draw via Box–Muller.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SquaredExponential;
    use crate::ssk::SskKernel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.5]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0]).sin() * 2.0 + 1.0).collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points() {
        let (xs, ys) = toy_data();
        let gp =
            Gp::fit(SquaredExponential::new(1), xs.clone(), ys.clone(), 1e-8).expect("spd gram");
        for (x, y) in xs.iter().zip(&ys) {
            let (mean, var) = gp.predict(x);
            assert!((mean - y).abs() < 1e-3, "mean {mean} vs {y}");
            assert!(var < 1e-4, "training variance should collapse");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let (xs, ys) = toy_data();
        let gp = Gp::fit(SquaredExponential::new(1), xs, ys, 1e-8).expect("spd");
        let (_, var_near) = gp.predict(&vec![2.0]);
        let (_, var_far) = gp.predict(&vec![50.0]);
        assert!(var_far > var_near * 10.0);
    }

    #[test]
    fn adam_training_improves_nlml() {
        let (xs, ys) = toy_data();
        let fixed = Gp::fit(
            SquaredExponential::new(1).with_variance(0.1),
            xs.clone(),
            ys.clone(),
            1e-6,
        )
        .expect("spd");
        let trained = Gp::fit_with_adam(
            SquaredExponential::new(1).with_variance(0.1),
            xs,
            ys,
            1e-6,
            &TrainConfig::default(),
        )
        .expect("spd");
        assert!(
            trained.nlml() <= fixed.nlml() + 1e-9,
            "training made the fit worse: {} > {}",
            trained.nlml(),
            fixed.nlml()
        );
    }

    #[test]
    fn works_with_the_string_kernel() {
        // Target correlates with the count of token 0 — learnable by SSK.
        let seqs: Vec<Vec<u8>> = vec![
            vec![0, 0, 0, 0],
            vec![0, 0, 0, 1],
            vec![0, 1, 1, 1],
            vec![1, 1, 1, 1],
            vec![0, 0, 1, 1],
            vec![1, 0, 0, 0],
        ];
        let ys: Vec<f64> = seqs
            .iter()
            .map(|s| s.iter().filter(|&&c| c == 0).count() as f64)
            .collect();
        let gp = Gp::fit_with_adam(
            SskKernel::new(3),
            seqs.clone(),
            ys,
            1e-4,
            &TrainConfig {
                steps: 15,
                ..TrainConfig::default()
            },
        )
        .expect("spd");
        let (m_many, _) = gp.predict(&vec![0u8, 0, 0, 0]);
        let (m_few, _) = gp.predict(&vec![1u8, 1, 1, 1]);
        assert!(
            m_many > m_few + 1.0,
            "SSK GP failed to learn the trend: {m_many} vs {m_few}"
        );
        // Decays must have stayed in the projected box.
        let p = Kernel::<[u8]>::params(gp.kernel());
        assert!(p.iter().all(|&v| (0.01..=1.0).contains(&v)), "{p:?}");
    }

    #[test]
    fn extend_matches_from_scratch_fit() {
        let (xs, ys) = toy_data();
        let mut incremental = Gp::fit(
            SquaredExponential::new(1),
            xs[..4].to_vec(),
            ys[..4].to_vec(),
            1e-6,
        )
        .expect("spd");
        for i in 4..xs.len() {
            incremental = incremental.extend(xs[i].clone(), ys[i]).expect("extend");
        }
        let scratch = Gp::fit(SquaredExponential::new(1), xs.clone(), ys, 1e-6).expect("spd");
        for probe in [vec![0.25], vec![2.1], vec![7.0]] {
            let (m_inc, v_inc) = incremental.predict(&probe);
            let (m_full, v_full) = scratch.predict(&probe);
            assert!(
                (m_inc - m_full).abs() < 1e-10,
                "means diverged: {m_inc} vs {m_full}"
            );
            assert!(
                (v_inc - v_full).abs() < 1e-10,
                "variances diverged: {v_inc} vs {v_full}"
            );
        }
        assert!((incremental.nlml() - scratch.nlml()).abs() < 1e-10);
    }

    #[test]
    fn extend_matches_fit_with_the_string_kernel() {
        let seqs: Vec<Vec<u8>> = vec![
            vec![0, 1, 2, 3],
            vec![3, 2, 1, 0],
            vec![0, 0, 1, 1],
            vec![2, 3, 0, 1],
            vec![1, 1, 1, 1],
            vec![0, 2, 0, 2],
        ];
        let ys: Vec<f64> = (0..seqs.len()).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut incremental = Gp::fit(
            SskKernel::new(3),
            seqs[..3].to_vec(),
            ys[..3].to_vec(),
            1e-4,
        )
        .expect("spd");
        for i in 3..seqs.len() {
            incremental = incremental.extend(seqs[i].clone(), ys[i]).expect("extend");
        }
        let scratch = Gp::fit(SskKernel::new(3), seqs, ys, 1e-4).expect("spd");
        let probe = vec![0u8, 3, 1, 2];
        let (m_inc, v_inc) = incremental.predict(&probe);
        let (m_full, v_full) = scratch.predict(&probe);
        assert!((m_inc - m_full).abs() < 1e-10);
        assert!((v_inc - v_full).abs() < 1e-10);
    }

    #[test]
    fn posterior_samples_concentrate_at_data() {
        let (xs, ys) = toy_data();
        let gp = Gp::fit(SquaredExponential::new(1), xs.clone(), ys.clone(), 1e-8).expect("spd");
        let mut rng = StdRng::seed_from_u64(3);
        let sample = gp.sample_posterior(&xs, &mut rng).expect("psd cov");
        for (s, y) in sample.iter().zip(&ys) {
            assert!((s - y).abs() < 0.1, "sample strayed from the data");
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
