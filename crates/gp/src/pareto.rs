//! Multi-objective utilities for batch acquisition: random-weight
//! Chebyshev scalarisations (ParEGO-style) over the existing q-EI
//! constant-liar path, plus a 2-D hypervolume scorer for the area/delay
//! front.
//!
//! Everything here minimises: cost vectors are "lower is better" per
//! component, matching the evaluation stack's convention.

use rand::Rng;

/// An augmented Chebyshev scalarisation with fixed random weights.
///
/// `s(f) = max_i w_i f_i + ρ Σ_i w_i f_i` — the standard ParEGO form:
/// optimising `s` for weights drawn across iterations sweeps the whole
/// Pareto front, including non-convex regions a linear scalarisation
/// cannot reach; the small `ρ` term breaks ties toward dominating points.
#[derive(Clone, Debug)]
pub struct Scalarisation {
    /// Nonnegative weights summing to one.
    pub weights: Vec<f64>,
    /// The augmentation coefficient (ParEGO uses 0.05).
    pub rho: f64,
}

impl Scalarisation {
    /// Uniform weights — the balanced scalarisation.
    pub fn uniform(dim: usize) -> Scalarisation {
        let dim = dim.max(1);
        Scalarisation {
            weights: vec![1.0 / dim as f64; dim],
            rho: 0.05,
        }
    }

    /// Draws random weights uniformly from the `dim`-simplex.
    pub fn sample<R: Rng>(dim: usize, rng: &mut R) -> Scalarisation {
        let dim = dim.max(1);
        // Exponential spacings normalised to the simplex (the standard
        // uniform-Dirichlet construction).
        let draws: Vec<f64> = (0..dim)
            .map(|_| -(rng.gen_range(f64::EPSILON..1.0).ln()))
            .collect();
        let total: f64 = draws.iter().sum();
        Scalarisation {
            weights: draws.iter().map(|d| d / total).collect(),
            rho: 0.05,
        }
    }

    /// Scalarises one cost vector (lower is better).
    ///
    /// # Panics
    ///
    /// Panics if `costs` and the weights disagree on dimension.
    pub fn scalarise(&self, costs: &[f64]) -> f64 {
        assert_eq!(costs.len(), self.weights.len(), "dimension mismatch");
        let weighted: Vec<f64> = costs
            .iter()
            .zip(&self.weights)
            .map(|(c, w)| c * w)
            .collect();
        let max = weighted.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        max + self.rho * weighted.iter().sum::<f64>()
    }
}

/// Whether `a` Pareto-dominates `b` (minimisation): no worse everywhere,
/// strictly better somewhere.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
}

/// Indices of the nondominated points of `points` (minimisation), in
/// input order. Duplicate vectors are all kept — they dominate nothing
/// and are dominated by nothing.
pub fn nondominated_indices(points: &[Vec<f64>]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| !points.iter().any(|other| dominates(other, &points[i])))
        .collect()
}

/// The 2-D hypervolume (minimisation) a point set dominates with respect
/// to `reference`: the area of `{ y : ∃p, p ≤ y ≤ reference }`. Points not
/// strictly better than the reference in both coordinates contribute
/// nothing; an empty set scores zero.
pub fn hypervolume_2d(points: &[(f64, f64)], reference: (f64, f64)) -> f64 {
    let mut front: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|&(a, d)| a < reference.0 && d < reference.1)
        .collect();
    // Sort by the first coordinate; sweeping left to right, each point
    // contributes a rectangle down to the best second coordinate so far.
    front.sort_by(|a, b| a.partial_cmp(b).expect("finite costs"));
    let mut volume = 0.0;
    let mut best_d = reference.1;
    for (a, d) in front {
        if d < best_d {
            volume += (reference.0 - a) * (best_d - d);
            best_d = d;
        }
    }
    volume
}

/// How much adding `candidate` grows the dominated hypervolume of `front`
/// (zero for dominated candidates) — the acquisition score steering the
/// multi-objective batch toward front expansion.
pub fn hypervolume_improvement_2d(
    front: &[(f64, f64)],
    candidate: (f64, f64),
    reference: (f64, f64),
) -> f64 {
    let mut extended = front.to_vec();
    extended.push(candidate);
    hypervolume_2d(&extended, reference) - hypervolume_2d(front, reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scalarisation_weights_live_on_the_simplex() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let s = Scalarisation::sample(2, &mut rng);
            assert_eq!(s.weights.len(), 2);
            assert!((s.weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(s.weights.iter().all(|&w| (0.0..=1.0).contains(&w)));
        }
    }

    #[test]
    fn scalarisation_prefers_dominating_points() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let s = Scalarisation::sample(2, &mut rng);
            // (0.4, 0.5) dominates (0.5, 0.6): every scalarisation with
            // the augmentation term must strictly prefer it.
            assert!(s.scalarise(&[0.4, 0.5]) < s.scalarise(&[0.5, 0.6]));
        }
        let u = Scalarisation::uniform(2);
        assert!((u.weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(u.scalarise(&[1.0, 1.0]) > 0.0);
    }

    #[test]
    fn nondominated_filter_matches_hand_computation() {
        let points = vec![
            vec![1.0, 3.0], // kept
            vec![2.0, 2.0], // kept
            vec![2.0, 3.0], // dominated by both
            vec![3.0, 1.0], // kept
            vec![1.0, 3.0], // duplicate: kept
        ];
        assert_eq!(nondominated_indices(&points), vec![0, 1, 3, 4]);
        assert!(dominates(&[1.0, 3.0], &[2.0, 3.0]));
        assert!(!dominates(&[1.0, 3.0], &[1.0, 3.0]));
    }

    #[test]
    fn hypervolume_of_known_fronts() {
        let reference = (4.0, 4.0);
        // One point: a simple rectangle.
        assert_eq!(hypervolume_2d(&[(2.0, 2.0)], reference), 4.0);
        // Two nondominated points: union of rectangles, overlap counted
        // once: (4-1)(4-3)=3 and (4-3)(4-1)=3 overlapping on 1×1.
        let hv = hypervolume_2d(&[(1.0, 3.0), (3.0, 1.0)], reference);
        assert!((hv - 5.0).abs() < 1e-12);
        // A dominated point adds nothing.
        let hv2 = hypervolume_2d(&[(1.0, 3.0), (3.0, 1.0), (3.5, 3.5)], reference);
        assert!((hv2 - 5.0).abs() < 1e-12);
        // Points at or beyond the reference contribute nothing.
        assert_eq!(hypervolume_2d(&[(4.0, 0.5), (5.0, 5.0)], reference), 0.0);
        assert_eq!(hypervolume_2d(&[], reference), 0.0);
    }

    #[test]
    fn hypervolume_improvement_rewards_front_expansion() {
        let reference = (4.0, 4.0);
        let front = [(1.0, 3.0), (3.0, 1.0)];
        // A point filling the middle gap improves the volume …
        let gain = hypervolume_improvement_2d(&front, (1.5, 1.5), reference);
        assert!(gain > 0.0);
        // … a dominated point does not.
        assert_eq!(
            hypervolume_improvement_2d(&front, (3.5, 3.5), reference),
            0.0
        );
        // Monotone: a dominating candidate gains at least as much.
        let better = hypervolume_improvement_2d(&front, (1.0, 1.0), reference);
        assert!(better >= gain);
    }
}
