//! The sub-sequence string kernel (SSK) of BOiLS (Section III-B1).
//!
//! For sequences `s`, `t` over a finite alphabet, the kernel is
//! `k(s, t) = Σ_{u ∈ Σ^{≤ℓ}} c_u(s) · c_u(t)`, where the contribution of a
//! sub-sequence `u` occurring at positions `i₁ < … < i_|u|` is weighted by a
//! match decay `θ_m^{|u|}` and a gap decay `θ_g^{gap}` with
//! `gap = i_last − i_first + 1 − |u|` (the number of interior skips).
//!
//! Because the gap weight factorises over consecutive matched positions,
//! the kernel is computable in `O(ℓ·|s|·|t|)` with a two-dimensional
//! geometric prefix-sum dynamic programme; a brute-force enumeration
//! cross-checks it in the tests (including the paper's Table I).

use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use crate::kernel::Kernel;

/// Reusable flat DP buffers for [`SskKernel::eval_raw`]. One set per
/// thread: a kernel evaluation needs three `|s|·|t|` planes, and
/// allocating them per pair dominated Gram-fill profiles (the DP itself is
/// a few hundred fused multiply-adds at the paper's `K = 20`).
#[derive(Debug, Default)]
struct SskScratch {
    m_cur: Vec<f64>,
    m_next: Vec<f64>,
    prefix: Vec<f64>,
}

impl SskScratch {
    fn reserve(&mut self, cells: usize) {
        if self.m_cur.len() < cells {
            self.m_cur.resize(cells, 0.0);
            self.m_next.resize(cells, 0.0);
            self.prefix.resize(cells, 0.0);
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<SskScratch> = RefCell::new(SskScratch::default());
}

/// The decay-parameter-independent structure of one `(s, t)` pair: which
/// `(i, j)` cells match, and the highest matching order any sub-sequence
/// attains (capped at the kernel's ℓ).
///
/// The SSK DP interleaves two ingredients: the *token-match structure*
/// (fixed for a pair of sequences) and the *decay weights* `θ_m`, `θ_g`
/// (changed by every Adam step during hyperparameter training). This type
/// captures the first ingredient once, so repeated evaluations of the same
/// pair at different decays — a retrain runs dozens of Gram fills over the
/// same training set — only pay the cheap decay-dependent contraction
/// (training-pair evaluations consult the kernel's [`MatchStore`]; see
/// [`Kernel::eval_training`]). The contraction reproduces the full DP's
/// arithmetic operation-for-operation, so values are **bit-identical** to
/// the uncached path.
#[derive(Debug)]
pub struct MatchState {
    rows: usize,
    cols: usize,
    /// CSR-style row offsets into `match_cols` (`rows + 1` entries).
    row_offsets: Vec<u32>,
    /// Matching column indices, sorted within each row.
    match_cols: Vec<u32>,
    /// The highest order `p` for which an order-`p` matching exists,
    /// capped at the kernel's ℓ; `0` when the pair shares no token.
    max_order: usize,
}

impl MatchState {
    /// Builds the match structure of `(s, t)` with orders capped at `ell`.
    fn build(s: &[u8], t: &[u8], ell: usize) -> MatchState {
        let (n, m) = (s.len(), t.len());
        let mut row_offsets = Vec::with_capacity(n + 1);
        let mut match_cols: Vec<u32> = Vec::new();
        row_offsets.push(0u32);
        for &si in s {
            for (j, &tj) in t.iter().enumerate() {
                if si == tj {
                    match_cols.push(j as u32);
                }
            }
            row_offsets.push(match_cols.len() as u32);
        }
        let mut state = MatchState {
            rows: n,
            cols: m,
            row_offsets,
            match_cols,
            max_order: 0,
        };
        state.max_order = state.compute_max_order(ell);
        state
    }

    /// Matching column indices of row `i`.
    fn cols_of(&self, i: usize) -> &[u32] {
        &self.match_cols[self.row_offsets[i] as usize..self.row_offsets[i + 1] as usize]
    }

    /// The highest matching order, by a boolean strict-dominance DP: an
    /// order-`p+1` matching ends at `(i, j)` iff `(i, j)` matches and some
    /// order-`p` matching ends strictly above-left of it.
    fn compute_max_order(&self, ell: usize) -> usize {
        if self.match_cols.is_empty() || ell == 0 {
            return 0;
        }
        let (n, m) = (self.rows, self.cols);
        let mut cur = vec![false; n * m];
        for i in 0..n {
            for &j in self.cols_of(i) {
                cur[i * m + j as usize] = true;
            }
        }
        let mut order = 1;
        let mut dom = vec![false; n * m];
        while order < ell {
            for i in 0..n {
                for j in 0..m {
                    let mut v = cur[i * m + j];
                    if i > 0 {
                        v |= dom[(i - 1) * m + j];
                    }
                    if j > 0 {
                        v |= dom[i * m + j - 1];
                    }
                    dom[i * m + j] = v;
                }
            }
            let mut any = false;
            let mut next = vec![false; n * m];
            for i in 1..n {
                for &j in self.cols_of(i) {
                    let j = j as usize;
                    if j > 0 && dom[(i - 1) * m + (j - 1)] {
                        next[i * m + j] = true;
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
            order += 1;
            cur = next;
        }
        order
    }
}

/// Counters describing a [`MatchStore`]'s effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchStoreStats {
    /// Lookups served from the cache.
    pub hits: usize,
    /// Lookups that had to build a fresh [`MatchState`].
    pub misses: usize,
    /// Whole-shard clears triggered by the per-shard capacity bound.
    pub shard_clears: usize,
}

/// Number of lock shards in a [`MatchStore`].
const MATCH_STORE_SHARDS: usize = 16;

/// Default total [`MatchState`] capacity of a [`MatchStore`]: comfortably
/// above the `n(n+1)/2` training pairs of a paper-scale run (`n = 200` →
/// ~20k) so every retrain after the first finds the whole Gram's match
/// structure resident; a full store is ~25 MiB at `K = 20`.
const DEFAULT_MATCH_STORE_CAPACITY: usize = 65_536;

/// One lock shard: flat pair key → cached match structure.
type MatchShard = RwLock<HashMap<Box<[u8]>, Arc<MatchState>>>;

/// A sharded, bounded cache of [`MatchState`]s keyed by the ordered
/// sequence pair.
///
/// Shared (via `Arc`) by every clone of a [`SskKernel`] created with
/// [`SskKernel::with_match_caching`], so the scratch kernels a trainer
/// clones per objective evaluation all reuse one store. Only training
/// pairs enter ([`Kernel::eval_training`]), so at a paper-scale budget
/// the store stabilises at the Gram's `n(n+1)/2` pairs and every retrain
/// after the first starts warm. Eviction is coarse: when a shard reaches
/// its capacity share, it is cleared — the states are cheap to rebuild,
/// and the reuse that matters (dozens of Gram fills over the same
/// training pairs within one retrain, and the same pairs again at the
/// next retrain) sits well inside the default bound.
#[derive(Debug)]
pub struct MatchStore {
    shards: Vec<MatchShard>,
    shard_capacity: usize,
    hits: AtomicUsize,
    misses: AtomicUsize,
    shard_clears: AtomicUsize,
}

/// One flat key for the ordered pair `(s, t)`: `|s|` as little-endian
/// `u32`, then `s`, then `t` (unambiguous, single allocation per lookup).
fn pair_key(s: &[u8], t: &[u8]) -> Box<[u8]> {
    let mut key = Vec::with_capacity(4 + s.len() + t.len());
    key.extend_from_slice(&(s.len() as u32).to_le_bytes());
    key.extend_from_slice(s);
    key.extend_from_slice(t);
    key.into_boxed_slice()
}

impl MatchStore {
    /// An empty store with the default capacity.
    pub fn new() -> MatchStore {
        MatchStore::with_capacity(DEFAULT_MATCH_STORE_CAPACITY)
    }

    /// An empty store bounded at roughly `capacity` cached pairs.
    pub fn with_capacity(capacity: usize) -> MatchStore {
        MatchStore {
            shards: (0..MATCH_STORE_SHARDS).map(|_| RwLock::default()).collect(),
            shard_capacity: capacity.div_ceil(MATCH_STORE_SHARDS).max(1),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            shard_clears: AtomicUsize::new(0),
        }
    }

    /// Cache-effectiveness counters.
    pub fn stats(&self) -> MatchStoreStats {
        MatchStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            shard_clears: self.shard_clears.load(Ordering::Relaxed),
        }
    }

    /// Number of cached pairs across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("match store shard").len())
            .sum()
    }

    /// Whether the store holds no cached pairs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_of(&self, key: &[u8]) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// The cached match structure of `(s, t)`, built (and cached) on miss.
    fn get_or_build(&self, s: &[u8], t: &[u8], ell: usize) -> Arc<MatchState> {
        let key = pair_key(s, t);
        let shard = &self.shards[self.shard_of(&key)];
        {
            let map = shard.read().expect("match store shard");
            if let Some(state) = map.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(state);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(MatchState::build(s, t, ell));
        let mut map = shard.write().expect("match store shard");
        if map.len() >= self.shard_capacity {
            map.clear();
            self.shard_clears.fetch_add(1, Ordering::Relaxed);
        }
        map.insert(key, Arc::clone(&state));
        state
    }
}

impl Default for MatchStore {
    fn default() -> Self {
        MatchStore::new()
    }
}

/// `k(s,t) / √(k(s,s)·k(t,t))`, with the degenerate-sequence convention
/// shared by the cached and uncached normalisation paths.
fn normalized(raw: f64, ks: f64, kt: f64, same: bool) -> f64 {
    if ks <= 0.0 || kt <= 0.0 {
        return if same { 1.0 } else { 0.0 };
    }
    raw / (ks * kt).sqrt()
}

/// The BOiLS sub-sequence string kernel over token sequences (`[u8]`).
///
/// ```
/// use boils_gp::{Kernel, SskKernel};
///
/// let k = SskKernel::new(3).with_decays(0.8, 0.5);
/// let a = [1u8, 2, 3];
/// let b = [1u8, 2, 4];
/// let sim_ab = k.eval(&a[..], &b[..]);
/// let sim_aa = k.eval(&a[..], &a[..]);
/// assert!(sim_ab > 0.0 && sim_ab < sim_aa); // normalised: k(a,a) = 1
/// assert!((sim_aa - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct SskKernel {
    max_subsequence: usize,
    match_decay: f64,
    gap_decay: f64,
    normalize: bool,
    /// Whether [`Kernel::self_info`] summaries carry the per-sequence
    /// self-similarity. `false` recomputes `k̃(s,s)`/`k̃(t,t)` inside every
    /// pair evaluation — the seed implementation's cost model, kept as a
    /// benchmarking baseline. Values are bit-identical either way.
    cache_self_info: bool,
    /// Optional shared cache of per-pair [`MatchState`]s (see
    /// [`SskKernel::with_match_caching`]); decays are *not* part of the
    /// key — the cached structure is parameter-independent by
    /// construction, so [`Kernel::set_params`] never invalidates it.
    match_store: Option<Arc<MatchStore>>,
}

impl SskKernel {
    /// A normalised SSK considering sub-sequences up to length `ell`,
    /// with decays `θ_m = 0.8`, `θ_g = 0.5`.
    ///
    /// # Panics
    ///
    /// Panics if `ell == 0`.
    pub fn new(ell: usize) -> SskKernel {
        assert!(ell >= 1, "subsequence order must be at least 1");
        SskKernel {
            max_subsequence: ell,
            match_decay: 0.8,
            gap_decay: 0.5,
            normalize: true,
            cache_self_info: true,
            match_store: None,
        }
    }

    /// Attaches a fresh [`MatchStore`]: every **training-pair** evaluation
    /// ([`Kernel::eval_training`] — Gram fills, marginal-likelihood
    /// objectives, factor extensions) first consults the cache for the
    /// pair's decay-independent [`MatchState`] and then runs only the
    /// decay-dependent contraction. Values are bit-identical to the
    /// uncached DP; the win is that hyperparameter retrains — whose Adam
    /// steps rebuild the Gram over the *same* training pairs at different
    /// decays, dozens of times — stop re-deriving the token-match
    /// structure from scratch on every fill. Prediction-path evaluations
    /// ([`Kernel::eval_with_info`]) deliberately bypass the store: their
    /// probe pairs are one-shot, so caching them would cost structure
    /// builds that are never reused and would churn the training entries
    /// out of the bounded shards.
    ///
    /// Clones of the kernel (e.g. the per-evaluation copies a trainer
    /// makes) share the store.
    pub fn with_match_caching(mut self) -> SskKernel {
        self.match_store = Some(Arc::new(MatchStore::new()));
        self
    }

    /// The attached match-structure cache, if any.
    pub fn match_store(&self) -> Option<&MatchStore> {
        self.match_store.as_deref()
    }

    /// Disables per-point self-similarity caching: every pair evaluation
    /// recomputes both normalisation constants, as the seed implementation
    /// did (three DP runs per pair instead of one). Purely a benchmarking
    /// baseline — results are bit-identical.
    pub fn without_info_caching(mut self) -> SskKernel {
        self.cache_self_info = false;
        self
    }

    /// Overrides the match and gap decays (both clamped to `[0, 1]` by the
    /// trainer's projection).
    pub fn with_decays(mut self, match_decay: f64, gap_decay: f64) -> SskKernel {
        self.match_decay = match_decay;
        self.gap_decay = gap_decay;
        self
    }

    /// Disables normalisation (`k(s,t)/√(k(s,s)·k(t,t))`).
    pub fn without_normalization(mut self) -> SskKernel {
        self.normalize = false;
        self
    }

    /// The maximum sub-sequence order ℓ.
    pub fn max_subsequence(&self) -> usize {
        self.max_subsequence
    }

    /// The match decay θ_m.
    pub fn match_decay(&self) -> f64 {
        self.match_decay
    }

    /// The gap decay θ_g.
    pub fn gap_decay(&self) -> f64 {
        self.gap_decay
    }

    /// The un-normalised kernel value.
    ///
    /// The `O(ℓ·|s|·|t|)` dynamic programme runs on flat per-thread scratch
    /// buffers (`M[i][j]`: matchings of the current order ending exactly at
    /// `(i, j)`; `S[i][j]`: geometric 2-D prefix sum of `M`), so repeated
    /// evaluations — a Gram fill is `O(n²)` of them — allocate nothing. The
    /// arithmetic order is unchanged from the allocating version, so values
    /// are bit-identical.
    pub fn eval_raw(&self, s: &[u8], t: &[u8]) -> f64 {
        let (n, m) = (s.len(), t.len());
        if n == 0 || m == 0 {
            return 0.0;
        }
        SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.reserve(n * m);
            self.eval_raw_in(s, t, scratch)
        })
    }

    /// [`SskKernel::eval_raw`] through the attached [`MatchStore`]:
    /// fetches (building on first sight) the pair's decay-independent
    /// match structure and runs only the decay-dependent contraction.
    /// Bit-identical to the dense DP; reserved for *training* pairs
    /// ([`Kernel::eval_training`]), which recur across the Adam steps of
    /// a retrain and across retrains — one-shot prediction pairs would
    /// pay the structure build without ever reusing it.
    fn eval_raw_cached(&self, store: &MatchStore, s: &[u8], t: &[u8]) -> f64 {
        let (n, m) = (s.len(), t.len());
        if n == 0 || m == 0 {
            return 0.0;
        }
        let state = store.get_or_build(s, t, self.max_subsequence);
        SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.reserve(n * m);
            self.eval_raw_with_state(&state, scratch)
        })
    }

    /// The decay-dependent contraction over a cached [`MatchState`]: the
    /// same dynamic programme as [`SskKernel::eval_raw_in`], but the match
    /// planes are filled sparsely from the cached match positions (writing
    /// and accumulating in the identical row-major order — skipping an
    /// exact `+0.0` never changes a non-negative sum's bits) and the order
    /// loop is capped at the cached maximum matching order, skipping the
    /// one trailing all-zero plane the dense code computes only to add
    /// `0.0`. Values are therefore bit-identical to the full DP.
    fn eval_raw_with_state(&self, state: &MatchState, scratch: &mut SskScratch) -> f64 {
        let (n, m) = (state.rows, state.cols);
        if state.max_order == 0 {
            return 0.0;
        }
        let tm2 = self.match_decay * self.match_decay;
        let g = self.gap_decay;
        let g2 = g * g;
        let cells = n * m;
        let mut m_cur = &mut scratch.m_cur[..cells];
        let mut m_next = &mut scratch.m_next[..cells];
        let prefix = &mut scratch.prefix[..cells];
        let mut total = 0.0;
        // Order-1 matchings, sparse: zero the plane, then drop `tm2` at
        // every cached match, accumulating the plane sum in the same
        // row-major order as the dense fill + `iter().sum()`.
        m_cur.fill(0.0);
        let mut plane: f64 = 0.0;
        for i in 0..n {
            let row = &mut m_cur[i * m..(i + 1) * m];
            for &j in state.cols_of(i) {
                row[j as usize] = tm2;
                plane += tm2;
            }
        }
        total += plane;
        for _ in 1..self.max_subsequence.min(state.max_order) {
            // Guard against float underflow to an exactly-zero plane (the
            // dense path's only data-dependent early exit).
            if plane == 0.0 {
                break;
            }
            // Dense geometric 2-D prefix sum — identical to the uncached
            // path (every cell feeds cells below/right, match or not).
            {
                let mut left = 0.0;
                for j in 0..m {
                    let v = m_cur[j] + g * left;
                    prefix[j] = v;
                    left = v;
                }
            }
            for i in 1..n {
                let (done, rest) = prefix.split_at_mut(i * m);
                let prev_row = &done[(i - 1) * m..];
                let cur_row = &mut rest[..m];
                let src = &m_cur[i * m..(i + 1) * m];
                let mut diag = prev_row[0];
                let mut left = src[0] + g * diag;
                cur_row[0] = left;
                for j in 1..m {
                    let up = prev_row[j];
                    let v = src[j] + g * up + g * left - g2 * diag;
                    cur_row[j] = v;
                    left = v;
                    diag = up;
                }
            }
            // Extension, sparse: only cached matches with i ≥ 1, j ≥ 1 can
            // extend a shorter matching; everything else is an exact zero.
            plane = 0.0;
            m_next[..m].fill(0.0);
            for i in 1..n {
                let prev_prefix = &prefix[(i - 1) * m..i * m];
                let row = &mut m_next[i * m..(i + 1) * m];
                row.fill(0.0);
                for &j in state.cols_of(i) {
                    let j = j as usize;
                    if j == 0 {
                        continue;
                    }
                    let v = tm2 * prev_prefix[j - 1];
                    row[j] = v;
                    plane += v;
                }
            }
            std::mem::swap(&mut m_cur, &mut m_next);
            total += plane;
        }
        total
    }

    fn eval_raw_in(&self, s: &[u8], t: &[u8], scratch: &mut SskScratch) -> f64 {
        let (n, m) = (s.len(), t.len());
        let tm2 = self.match_decay * self.match_decay;
        let g = self.gap_decay;
        let g2 = g * g;
        let cells = n * m;
        let mut m_cur = &mut scratch.m_cur[..cells];
        let mut m_next = &mut scratch.m_next[..cells];
        let prefix = &mut scratch.prefix[..cells];
        let mut total = 0.0;
        // Order-1 matchings.
        for (i, &si) in s.iter().enumerate() {
            let row = &mut m_cur[i * m..(i + 1) * m];
            for (cell, &tj) in row.iter_mut().zip(t) {
                *cell = if si == tj { tm2 } else { 0.0 };
            }
        }
        let mut plane: f64 = m_cur.iter().sum();
        total += plane;
        for _ in 1..self.max_subsequence {
            // A zero plane stays zero at every higher order (entries are
            // non-negative) — common for dissimilar sequences.
            if plane == 0.0 {
                break;
            }
            // Geometric 2-D prefix sum of the previous order, with the
            // boundary rows/columns peeled so the interior loop is
            // branch-free. Each cell evaluates the same expression
            // `M + g·up + g·left − g²·diag` in the same order as the
            // reference implementation (edge terms are exact zeros), so
            // values are bit-identical.
            {
                let mut left = 0.0;
                for j in 0..m {
                    let v = m_cur[j] + g * left;
                    prefix[j] = v;
                    left = v;
                }
            }
            for i in 1..n {
                let (done, rest) = prefix.split_at_mut(i * m);
                let prev_row = &done[(i - 1) * m..];
                let cur_row = &mut rest[..m];
                let src = &m_cur[i * m..(i + 1) * m];
                let mut diag = prev_row[0];
                let mut left = src[0] + g * diag;
                cur_row[0] = left;
                for j in 1..m {
                    let up = prev_row[j];
                    let v = src[j] + g * up + g * left - g2 * diag;
                    cur_row[j] = v;
                    left = v;
                    diag = up;
                }
            }
            // Extend matches by one token; row 0 and column 0 admit no
            // extension.
            plane = 0.0;
            m_next[..m].fill(0.0);
            for i in 1..n {
                let si = s[i];
                let prev_prefix = &prefix[(i - 1) * m..i * m];
                let row = &mut m_next[i * m..(i + 1) * m];
                row[0] = 0.0;
                for j in 1..m {
                    let v = if si == t[j] {
                        tm2 * prev_prefix[j - 1]
                    } else {
                        0.0
                    };
                    row[j] = v;
                    plane += v;
                }
            }
            std::mem::swap(&mut m_cur, &mut m_next);
            total += plane;
        }
        total
    }

    /// The contribution `c_u(s)` of sub-sequence `u` to `s` (the quantity
    /// tabulated in the paper's Table I), computed by direct enumeration of
    /// matchings.
    pub fn contribution(&self, u: &[u8], s: &[u8]) -> f64 {
        if u.is_empty() || u.len() > s.len() {
            return 0.0;
        }
        // Recursive enumeration over the position of each matched token,
        // carrying the accumulated interior-gap weight.
        fn rec(u: &[u8], s: &[u8], ui: usize, last: usize, g: f64) -> f64 {
            if ui == u.len() {
                return 1.0;
            }
            let mut sum = 0.0;
            // This token can sit anywhere that still leaves room for the
            // remaining u.len() - ui - 1 tokens.
            for pos in (last + 1)..=(s.len() - (u.len() - ui - 1)) {
                if s[pos - 1] == u[ui] {
                    let gaps = if ui == 0 { 0 } else { pos - last - 1 };
                    sum += g.powi(gaps as i32) * rec(u, s, ui + 1, pos, g);
                }
            }
            sum
        }
        self.match_decay.powi(u.len() as i32) * rec(u, s, 0, 0, self.gap_decay)
    }
}

/// Owned-vector convenience for GP storage.
impl Kernel<Vec<u8>> for SskKernel {
    fn eval(&self, a: &Vec<u8>, b: &Vec<u8>) -> f64 {
        Kernel::<[u8]>::eval(self, a, b)
    }

    fn self_info(&self, x: &Vec<u8>) -> f64 {
        Kernel::<[u8]>::self_info(self, x)
    }

    fn eval_with_info(&self, a: &Vec<u8>, info_a: f64, b: &Vec<u8>, info_b: f64) -> f64 {
        Kernel::<[u8]>::eval_with_info(self, a, info_a, b, info_b)
    }

    fn eval_training(&self, a: &Vec<u8>, info_a: f64, b: &Vec<u8>, info_b: f64) -> f64 {
        Kernel::<[u8]>::eval_training(self, a, info_a, b, info_b)
    }

    fn params(&self) -> Vec<f64> {
        Kernel::<[u8]>::params(self)
    }

    fn set_params(&mut self, params: &[f64]) {
        Kernel::<[u8]>::set_params(self, params)
    }

    fn param_bounds(&self) -> Vec<(f64, f64)> {
        Kernel::<[u8]>::param_bounds(self)
    }
}

impl Kernel<[u8]> for SskKernel {
    fn eval(&self, a: &[u8], b: &[u8]) -> f64 {
        let raw = self.eval_raw(a, b);
        if !self.normalize {
            return raw;
        }
        let ka = self.eval_raw(a, a);
        let kb = self.eval_raw(b, b);
        normalized(raw, ka, kb, a == b)
    }

    /// The raw self-similarity `k̃(x, x)` — the quantity a normalised Gram
    /// fill recomputes for every pair unless cached per point.
    fn self_info(&self, x: &[u8]) -> f64 {
        if self.normalize && self.cache_self_info {
            self.eval_raw(x, x)
        } else {
            0.0
        }
    }

    fn eval_with_info(&self, a: &[u8], info_a: f64, b: &[u8], info_b: f64) -> f64 {
        if !self.cache_self_info {
            return Kernel::<[u8]>::eval(self, a, b);
        }
        let raw = self.eval_raw(a, b);
        if !self.normalize {
            return raw;
        }
        normalized(raw, info_a, info_b, a == b)
    }

    /// Training pairs go through the [`MatchStore`] when one is attached
    /// (see [`SskKernel::with_match_caching`]); bit-identical to
    /// [`Kernel::eval_with_info`] either way.
    fn eval_training(&self, a: &[u8], info_a: f64, b: &[u8], info_b: f64) -> f64 {
        let Some(store) = &self.match_store else {
            return self.eval_with_info(a, info_a, b, info_b);
        };
        if !self.cache_self_info {
            // `without_info_caching` is the seed-cost-model baseline; it
            // never carries a store, but stay correct if combined.
            return Kernel::<[u8]>::eval(self, a, b);
        }
        let raw = self.eval_raw_cached(store, a, b);
        if !self.normalize {
            return raw;
        }
        normalized(raw, info_a, info_b, a == b)
    }

    fn params(&self) -> Vec<f64> {
        vec![self.match_decay, self.gap_decay]
    }

    fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), 2);
        self.match_decay = params[0];
        self.gap_decay = params[1];
    }

    fn param_bounds(&self) -> Vec<(f64, f64)> {
        // The paper projects θ = (θ_m, θ_g) onto [0, 1]²; we keep a small
        // positive floor so the kernel never degenerates to all-zeros.
        vec![(0.01, 1.0), (0.01, 1.0)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force `k(s, t)` by enumerating every sub-sequence `u` with
    /// `|u| ≤ ℓ` over the joint alphabet.
    fn brute_force(k: &SskKernel, s: &[u8], t: &[u8]) -> f64 {
        let mut alphabet: Vec<u8> = s.iter().chain(t).copied().collect();
        alphabet.sort_unstable();
        alphabet.dedup();
        let mut total = 0.0;
        let mut stack: Vec<Vec<u8>> = alphabet.iter().map(|&c| vec![c]).collect();
        while let Some(u) = stack.pop() {
            total += k.contribution(&u, s) * k.contribution(&u, t);
            if u.len() < k.max_subsequence {
                for &c in &alphabet {
                    let mut v = u.clone();
                    v.push(c);
                    stack.push(v);
                }
            }
        }
        total
    }

    #[test]
    fn dp_matches_brute_force() {
        let cases: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (vec![0, 1, 2], vec![0, 1, 2]),
            (vec![0, 1, 2, 1], vec![1, 0, 2]),
            (vec![3, 3, 3], vec![3, 3]),
            (vec![0, 1, 0, 1, 2], vec![2, 1, 0, 1]),
            (vec![5], vec![5]),
            (vec![0, 1], vec![2, 3]),
            (vec![1, 2, 3, 4, 2, 1], vec![4, 3, 2, 1, 2, 3]),
        ];
        for ell in 1..=3 {
            let k = SskKernel::new(ell)
                .with_decays(0.7, 0.4)
                .without_normalization();
            for (s, t) in &cases {
                let dp = k.eval_raw(s, t);
                let bf = brute_force(&k, s, t);
                assert!(
                    (dp - bf).abs() < 1e-9 * (1.0 + bf.abs()),
                    "ℓ={ell} s={s:?} t={t:?}: dp={dp} bf={bf}"
                );
            }
        }
    }

    /// The worked examples of the paper's Table I. Tokens: Rw=0, Rf=1,
    /// Ds=2, So=3, Bl=4, Fr=5.
    #[test]
    fn paper_table_one() {
        let k = SskKernel::new(5).with_decays(0.9, 0.6);
        let (tm, tg) = (0.9f64, 0.6f64);
        let seq1 = [0u8, 1, 2, 3, 2, 4, 0]; // RwRfDsSoDsBlRw
        let seq2 = [0u8, 1, 2, 5, 3, 4, 0]; // RwRfDsFrSoBlRw
        let seq3 = [0u8, 1, 2, 5, 4, 3, 4]; // RwRfDsFrBlSoBl
        let u1 = [0u8, 1, 2, 4, 0]; // RwRfDsBlRw
        let u2 = [0u8, 1, 2, 5]; // RwRfDsFr
        let u3 = [0u8, 1]; // RwRf

        let close = |a: f64, b: f64| (a - b).abs() < 1e-12;
        // Row 1: RwRfDsSoDsBlRw.
        assert!(close(
            k.contribution(&u1, &seq1),
            2.0 * tm.powi(5) * tg.powi(2)
        ));
        assert!(close(k.contribution(&u2, &seq1), 0.0));
        assert!(close(k.contribution(&u3, &seq1), tm.powi(2)));
        // Row 2: RwRfDsFrSoBlRw.
        assert!(close(k.contribution(&u1, &seq2), tm.powi(5) * tg.powi(2)));
        assert!(close(k.contribution(&u2, &seq2), tm.powi(4)));
        assert!(close(k.contribution(&u3, &seq2), tm.powi(2)));
        // Row 3: RwRfDsFrBlSoBl.
        assert!(close(k.contribution(&u1, &seq3), 0.0));
        assert!(close(k.contribution(&u2, &seq3), tm.powi(4)));
        assert!(close(k.contribution(&u3, &seq3), tm.powi(2)));
    }

    #[test]
    fn normalised_kernel_is_a_similarity() {
        let k = SskKernel::new(4);
        let a = [0u8, 1, 2, 3, 4];
        let b = [0u8, 1, 2, 4, 3];
        let c = [5u8, 6, 7, 8, 9];
        assert!((k.eval(&a[..], &a[..]) - 1.0).abs() < 1e-12);
        let ab = k.eval(&a[..], &b[..]);
        let ac = k.eval(&a[..], &c[..]);
        assert!(ab > ac, "shared prefixes must look more similar");
        assert!((0.0..=1.0 + 1e-12).contains(&ab));
        assert_eq!(ac, 0.0, "disjoint alphabets share no sub-sequence");
    }

    #[test]
    fn gap_decay_penalises_spread_matches() {
        let k = SskKernel::new(2)
            .with_decays(0.9, 0.3)
            .without_normalization();
        let tight = [0u8, 1, 9, 9, 9];
        let spread = [0u8, 9, 9, 9, 1];
        let probe = [0u8, 1];
        assert!(k.eval_raw(&probe, &tight) > k.eval_raw(&probe, &spread));
    }

    #[test]
    fn kernel_gram_matrix_is_positive_definite() {
        use crate::linalg::{Cholesky, Matrix};
        let k = SskKernel::new(3);
        let seqs: Vec<Vec<u8>> = vec![
            vec![0, 1, 2, 3],
            vec![3, 2, 1, 0],
            vec![0, 0, 1, 1],
            vec![2, 3, 0, 1],
            vec![1, 1, 1, 1],
        ];
        let gram = Matrix::from_fn(seqs.len(), seqs.len(), |i, j| {
            k.eval(&seqs[i][..], &seqs[j][..])
        });
        assert!(Cholesky::new(&gram, 1e-8).is_ok(), "gram must be PSD");
    }

    #[test]
    fn empty_sequences_are_handled() {
        let k = SskKernel::new(3);
        assert_eq!(k.eval_raw(&[], &[1, 2]), 0.0);
        assert_eq!(k.eval(&[][..], &[][..]), 1.0); // identical → similarity 1
        assert_eq!(k.eval(&[][..], &[1][..]), 0.0);
        // The cached training path shares the degenerate conventions.
        let cached = SskKernel::new(3).with_match_caching();
        let train = |k: &SskKernel, a: &[u8], b: &[u8]| {
            let (ia, ib) = (
                Kernel::<[u8]>::self_info(k, a),
                Kernel::<[u8]>::self_info(k, b),
            );
            Kernel::<[u8]>::eval_training(k, a, ia, b, ib)
        };
        assert_eq!(train(&cached, &[], &[]), 1.0);
        assert_eq!(train(&cached, &[], &[1]), 0.0);
    }

    /// `eval_training` with both points' `self_info` summaries — the call
    /// shape of a Gram fill.
    fn training_eval(k: &SskKernel, s: &[u8], t: &[u8]) -> f64 {
        let (is, it) = (
            Kernel::<[u8]>::self_info(k, s),
            Kernel::<[u8]>::self_info(k, t),
        );
        Kernel::<[u8]>::eval_training(k, s, is, t, it)
    }

    #[test]
    fn match_cached_contraction_is_bit_identical_to_the_full_dp() {
        let cases: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (vec![0, 1, 2, 3, 2, 4, 0], vec![0, 1, 2, 5, 3, 4, 0]),
            (vec![3, 3, 3], vec![3, 3]),
            (vec![0, 1], vec![2, 3]), // disjoint: zero value
            (vec![1, 2, 3, 4, 2, 1], vec![4, 3, 2, 1, 2, 3]),
            (vec![5], vec![5]),
            (vec![0, 0, 0, 0, 0], vec![0, 0]),
        ];
        for ell in 1..=5 {
            for &(tm, tg) in &[(0.9, 0.6), (0.8, 0.5), (0.3, 0.95), (0.01, 0.01)] {
                let dense = SskKernel::new(ell).with_decays(tm, tg);
                let cached = SskKernel::new(ell).with_decays(tm, tg).with_match_caching();
                for (s, t) in &cases {
                    // Twice: the first call builds the MatchState, the
                    // second hits it — both must equal the dense DP bits.
                    for _ in 0..2 {
                        assert_eq!(
                            training_eval(&dense, s, t).to_bits(),
                            training_eval(&cached, s, t).to_bits(),
                            "ℓ={ell} θ=({tm},{tg}) s={s:?} t={t:?}"
                        );
                    }
                    // The prediction path ignores the store entirely and
                    // agrees too.
                    assert_eq!(
                        Kernel::<[u8]>::eval(&dense, s, t).to_bits(),
                        Kernel::<[u8]>::eval(&cached, s, t).to_bits(),
                        "normalised ℓ={ell} s={s:?} t={t:?}"
                    );
                }
                let stats = cached.match_store().expect("store").stats();
                assert!(stats.hits >= cases.len(), "second sweep must hit");
            }
        }
    }

    #[test]
    fn match_store_is_decay_independent_and_hits_across_set_params() {
        let mut k = SskKernel::new(4).with_match_caching();
        let s = [0u8, 1, 2, 3, 1];
        let t = [1u8, 0, 2, 1, 3];
        let first = training_eval(&k, &s, &t);
        let stats = k.match_store().expect("store attached").stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 0);
        // Changing decays must reuse the cached structure, not rebuild it.
        Kernel::<[u8]>::set_params(&mut k, &[0.55, 0.35]);
        let second = training_eval(&k, &s, &t);
        let stats = k.match_store().expect("store attached").stats();
        assert_eq!(stats.misses, 1, "decay change rebuilt the match state");
        assert_eq!(stats.hits, 1);
        assert_ne!(first, second, "different decays give different values");
        assert_eq!(
            second.to_bits(),
            training_eval(&SskKernel::new(4).with_decays(0.55, 0.35), &s, &t).to_bits()
        );
    }

    #[test]
    fn prediction_path_never_touches_the_store() {
        let k = SskKernel::new(4).with_match_caching();
        let s = [0u8, 1, 2, 3, 1];
        let probe = [1u8, 0, 2, 1, 3];
        let (is, ip) = (
            Kernel::<[u8]>::self_info(&k, &s),
            Kernel::<[u8]>::self_info(&k, &probe),
        );
        let _ = Kernel::<[u8]>::eval_with_info(&k, &s, is, &probe, ip);
        let _ = Kernel::<[u8]>::eval(&k, &s, &probe);
        let stats = k.match_store().expect("store").stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (0, 0),
            "one-shot prediction pairs must bypass (and not pollute) the store"
        );
        assert!(k.match_store().expect("store").is_empty());
    }

    #[test]
    fn match_store_is_shared_by_kernel_clones_and_bounded() {
        let k = SskKernel::new(3).with_match_caching();
        let clone = k.clone();
        let s = [1u8, 2, 3];
        let t = [3u8, 2, 1];
        let _ = training_eval(&k, &s, &t);
        let _ = training_eval(&clone, &s, &t);
        let stats = k.match_store().expect("store").stats();
        assert_eq!((stats.misses, stats.hits), (1, 1), "clones must share");
        // A tiny store stays bounded by clearing shards.
        let small = MatchStore::with_capacity(16);
        for i in 0..200u8 {
            let _ = small.get_or_build(&[i, i.wrapping_add(1)], &[i], 3);
        }
        assert!(small.len() <= 16 + MATCH_STORE_SHARDS);
        assert!(small.stats().shard_clears > 0);
    }

    #[test]
    fn match_state_max_order_matches_the_structural_maximum() {
        // s/t share an increasing sub-sequence of length 3 at most.
        let state = MatchState::build(&[0, 1, 2, 9], &[0, 1, 2], 5);
        assert_eq!(state.max_order, 3);
        let state = MatchState::build(&[0, 1, 2, 9], &[0, 1, 2], 2);
        assert_eq!(state.max_order, 2, "cap at ℓ");
        let state = MatchState::build(&[2, 1, 0], &[0, 1, 2], 5);
        assert_eq!(state.max_order, 1, "only reversed matches: no order 2");
        let state = MatchState::build(&[4, 4], &[5, 5], 5);
        assert_eq!(state.max_order, 0, "disjoint alphabets");
    }
}
