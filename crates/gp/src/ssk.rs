//! The sub-sequence string kernel (SSK) of BOiLS (Section III-B1).
//!
//! For sequences `s`, `t` over a finite alphabet, the kernel is
//! `k(s, t) = Σ_{u ∈ Σ^{≤ℓ}} c_u(s) · c_u(t)`, where the contribution of a
//! sub-sequence `u` occurring at positions `i₁ < … < i_|u|` is weighted by a
//! match decay `θ_m^{|u|}` and a gap decay `θ_g^{gap}` with
//! `gap = i_last − i_first + 1 − |u|` (the number of interior skips).
//!
//! Because the gap weight factorises over consecutive matched positions,
//! the kernel is computable in `O(ℓ·|s|·|t|)` with a two-dimensional
//! geometric prefix-sum dynamic programme; a brute-force enumeration
//! cross-checks it in the tests (including the paper's Table I).

use std::cell::RefCell;

use crate::kernel::Kernel;

/// Reusable flat DP buffers for [`SskKernel::eval_raw`]. One set per
/// thread: a kernel evaluation needs three `|s|·|t|` planes, and
/// allocating them per pair dominated Gram-fill profiles (the DP itself is
/// a few hundred fused multiply-adds at the paper's `K = 20`).
#[derive(Debug, Default)]
struct SskScratch {
    m_cur: Vec<f64>,
    m_next: Vec<f64>,
    prefix: Vec<f64>,
}

impl SskScratch {
    fn reserve(&mut self, cells: usize) {
        if self.m_cur.len() < cells {
            self.m_cur.resize(cells, 0.0);
            self.m_next.resize(cells, 0.0);
            self.prefix.resize(cells, 0.0);
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<SskScratch> = RefCell::new(SskScratch::default());
}

/// `k(s,t) / √(k(s,s)·k(t,t))`, with the degenerate-sequence convention
/// shared by the cached and uncached normalisation paths.
fn normalized(raw: f64, ks: f64, kt: f64, same: bool) -> f64 {
    if ks <= 0.0 || kt <= 0.0 {
        return if same { 1.0 } else { 0.0 };
    }
    raw / (ks * kt).sqrt()
}

/// The BOiLS sub-sequence string kernel over token sequences (`[u8]`).
///
/// ```
/// use boils_gp::{Kernel, SskKernel};
///
/// let k = SskKernel::new(3).with_decays(0.8, 0.5);
/// let a = [1u8, 2, 3];
/// let b = [1u8, 2, 4];
/// let sim_ab = k.eval(&a[..], &b[..]);
/// let sim_aa = k.eval(&a[..], &a[..]);
/// assert!(sim_ab > 0.0 && sim_ab < sim_aa); // normalised: k(a,a) = 1
/// assert!((sim_aa - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct SskKernel {
    max_subsequence: usize,
    match_decay: f64,
    gap_decay: f64,
    normalize: bool,
    /// Whether [`Kernel::self_info`] summaries carry the per-sequence
    /// self-similarity. `false` recomputes `k̃(s,s)`/`k̃(t,t)` inside every
    /// pair evaluation — the seed implementation's cost model, kept as a
    /// benchmarking baseline. Values are bit-identical either way.
    cache_self_info: bool,
}

impl SskKernel {
    /// A normalised SSK considering sub-sequences up to length `ell`,
    /// with decays `θ_m = 0.8`, `θ_g = 0.5`.
    ///
    /// # Panics
    ///
    /// Panics if `ell == 0`.
    pub fn new(ell: usize) -> SskKernel {
        assert!(ell >= 1, "subsequence order must be at least 1");
        SskKernel {
            max_subsequence: ell,
            match_decay: 0.8,
            gap_decay: 0.5,
            normalize: true,
            cache_self_info: true,
        }
    }

    /// Disables per-point self-similarity caching: every pair evaluation
    /// recomputes both normalisation constants, as the seed implementation
    /// did (three DP runs per pair instead of one). Purely a benchmarking
    /// baseline — results are bit-identical.
    pub fn without_info_caching(mut self) -> SskKernel {
        self.cache_self_info = false;
        self
    }

    /// Overrides the match and gap decays (both clamped to `[0, 1]` by the
    /// trainer's projection).
    pub fn with_decays(mut self, match_decay: f64, gap_decay: f64) -> SskKernel {
        self.match_decay = match_decay;
        self.gap_decay = gap_decay;
        self
    }

    /// Disables normalisation (`k(s,t)/√(k(s,s)·k(t,t))`).
    pub fn without_normalization(mut self) -> SskKernel {
        self.normalize = false;
        self
    }

    /// The maximum sub-sequence order ℓ.
    pub fn max_subsequence(&self) -> usize {
        self.max_subsequence
    }

    /// The match decay θ_m.
    pub fn match_decay(&self) -> f64 {
        self.match_decay
    }

    /// The gap decay θ_g.
    pub fn gap_decay(&self) -> f64 {
        self.gap_decay
    }

    /// The un-normalised kernel value.
    ///
    /// The `O(ℓ·|s|·|t|)` dynamic programme runs on flat per-thread scratch
    /// buffers (`M[i][j]`: matchings of the current order ending exactly at
    /// `(i, j)`; `S[i][j]`: geometric 2-D prefix sum of `M`), so repeated
    /// evaluations — a Gram fill is `O(n²)` of them — allocate nothing. The
    /// arithmetic order is unchanged from the allocating version, so values
    /// are bit-identical.
    pub fn eval_raw(&self, s: &[u8], t: &[u8]) -> f64 {
        let (n, m) = (s.len(), t.len());
        if n == 0 || m == 0 {
            return 0.0;
        }
        SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.reserve(n * m);
            self.eval_raw_in(s, t, scratch)
        })
    }

    fn eval_raw_in(&self, s: &[u8], t: &[u8], scratch: &mut SskScratch) -> f64 {
        let (n, m) = (s.len(), t.len());
        let tm2 = self.match_decay * self.match_decay;
        let g = self.gap_decay;
        let g2 = g * g;
        let cells = n * m;
        let mut m_cur = &mut scratch.m_cur[..cells];
        let mut m_next = &mut scratch.m_next[..cells];
        let prefix = &mut scratch.prefix[..cells];
        let mut total = 0.0;
        // Order-1 matchings.
        for (i, &si) in s.iter().enumerate() {
            let row = &mut m_cur[i * m..(i + 1) * m];
            for (cell, &tj) in row.iter_mut().zip(t) {
                *cell = if si == tj { tm2 } else { 0.0 };
            }
        }
        let mut plane: f64 = m_cur.iter().sum();
        total += plane;
        for _ in 1..self.max_subsequence {
            // A zero plane stays zero at every higher order (entries are
            // non-negative) — common for dissimilar sequences.
            if plane == 0.0 {
                break;
            }
            // Geometric 2-D prefix sum of the previous order, with the
            // boundary rows/columns peeled so the interior loop is
            // branch-free. Each cell evaluates the same expression
            // `M + g·up + g·left − g²·diag` in the same order as the
            // reference implementation (edge terms are exact zeros), so
            // values are bit-identical.
            {
                let mut left = 0.0;
                for j in 0..m {
                    let v = m_cur[j] + g * left;
                    prefix[j] = v;
                    left = v;
                }
            }
            for i in 1..n {
                let (done, rest) = prefix.split_at_mut(i * m);
                let prev_row = &done[(i - 1) * m..];
                let cur_row = &mut rest[..m];
                let src = &m_cur[i * m..(i + 1) * m];
                let mut diag = prev_row[0];
                let mut left = src[0] + g * diag;
                cur_row[0] = left;
                for j in 1..m {
                    let up = prev_row[j];
                    let v = src[j] + g * up + g * left - g2 * diag;
                    cur_row[j] = v;
                    left = v;
                    diag = up;
                }
            }
            // Extend matches by one token; row 0 and column 0 admit no
            // extension.
            plane = 0.0;
            m_next[..m].fill(0.0);
            for i in 1..n {
                let si = s[i];
                let prev_prefix = &prefix[(i - 1) * m..i * m];
                let row = &mut m_next[i * m..(i + 1) * m];
                row[0] = 0.0;
                for j in 1..m {
                    let v = if si == t[j] {
                        tm2 * prev_prefix[j - 1]
                    } else {
                        0.0
                    };
                    row[j] = v;
                    plane += v;
                }
            }
            std::mem::swap(&mut m_cur, &mut m_next);
            total += plane;
        }
        total
    }

    /// The contribution `c_u(s)` of sub-sequence `u` to `s` (the quantity
    /// tabulated in the paper's Table I), computed by direct enumeration of
    /// matchings.
    pub fn contribution(&self, u: &[u8], s: &[u8]) -> f64 {
        if u.is_empty() || u.len() > s.len() {
            return 0.0;
        }
        // Recursive enumeration over the position of each matched token,
        // carrying the accumulated interior-gap weight.
        fn rec(u: &[u8], s: &[u8], ui: usize, last: usize, g: f64) -> f64 {
            if ui == u.len() {
                return 1.0;
            }
            let mut sum = 0.0;
            // This token can sit anywhere that still leaves room for the
            // remaining u.len() - ui - 1 tokens.
            for pos in (last + 1)..=(s.len() - (u.len() - ui - 1)) {
                if s[pos - 1] == u[ui] {
                    let gaps = if ui == 0 { 0 } else { pos - last - 1 };
                    sum += g.powi(gaps as i32) * rec(u, s, ui + 1, pos, g);
                }
            }
            sum
        }
        self.match_decay.powi(u.len() as i32) * rec(u, s, 0, 0, self.gap_decay)
    }
}

/// Owned-vector convenience for GP storage.
impl Kernel<Vec<u8>> for SskKernel {
    fn eval(&self, a: &Vec<u8>, b: &Vec<u8>) -> f64 {
        Kernel::<[u8]>::eval(self, a, b)
    }

    fn self_info(&self, x: &Vec<u8>) -> f64 {
        Kernel::<[u8]>::self_info(self, x)
    }

    fn eval_with_info(&self, a: &Vec<u8>, info_a: f64, b: &Vec<u8>, info_b: f64) -> f64 {
        Kernel::<[u8]>::eval_with_info(self, a, info_a, b, info_b)
    }

    fn params(&self) -> Vec<f64> {
        Kernel::<[u8]>::params(self)
    }

    fn set_params(&mut self, params: &[f64]) {
        Kernel::<[u8]>::set_params(self, params)
    }

    fn param_bounds(&self) -> Vec<(f64, f64)> {
        Kernel::<[u8]>::param_bounds(self)
    }
}

impl Kernel<[u8]> for SskKernel {
    fn eval(&self, a: &[u8], b: &[u8]) -> f64 {
        let raw = self.eval_raw(a, b);
        if !self.normalize {
            return raw;
        }
        let ka = self.eval_raw(a, a);
        let kb = self.eval_raw(b, b);
        normalized(raw, ka, kb, a == b)
    }

    /// The raw self-similarity `k̃(x, x)` — the quantity a normalised Gram
    /// fill recomputes for every pair unless cached per point.
    fn self_info(&self, x: &[u8]) -> f64 {
        if self.normalize && self.cache_self_info {
            self.eval_raw(x, x)
        } else {
            0.0
        }
    }

    fn eval_with_info(&self, a: &[u8], info_a: f64, b: &[u8], info_b: f64) -> f64 {
        if !self.cache_self_info {
            return Kernel::<[u8]>::eval(self, a, b);
        }
        let raw = self.eval_raw(a, b);
        if !self.normalize {
            return raw;
        }
        normalized(raw, info_a, info_b, a == b)
    }

    fn params(&self) -> Vec<f64> {
        vec![self.match_decay, self.gap_decay]
    }

    fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), 2);
        self.match_decay = params[0];
        self.gap_decay = params[1];
    }

    fn param_bounds(&self) -> Vec<(f64, f64)> {
        // The paper projects θ = (θ_m, θ_g) onto [0, 1]²; we keep a small
        // positive floor so the kernel never degenerates to all-zeros.
        vec![(0.01, 1.0), (0.01, 1.0)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force `k(s, t)` by enumerating every sub-sequence `u` with
    /// `|u| ≤ ℓ` over the joint alphabet.
    fn brute_force(k: &SskKernel, s: &[u8], t: &[u8]) -> f64 {
        let mut alphabet: Vec<u8> = s.iter().chain(t).copied().collect();
        alphabet.sort_unstable();
        alphabet.dedup();
        let mut total = 0.0;
        let mut stack: Vec<Vec<u8>> = alphabet.iter().map(|&c| vec![c]).collect();
        while let Some(u) = stack.pop() {
            total += k.contribution(&u, s) * k.contribution(&u, t);
            if u.len() < k.max_subsequence {
                for &c in &alphabet {
                    let mut v = u.clone();
                    v.push(c);
                    stack.push(v);
                }
            }
        }
        total
    }

    #[test]
    fn dp_matches_brute_force() {
        let cases: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (vec![0, 1, 2], vec![0, 1, 2]),
            (vec![0, 1, 2, 1], vec![1, 0, 2]),
            (vec![3, 3, 3], vec![3, 3]),
            (vec![0, 1, 0, 1, 2], vec![2, 1, 0, 1]),
            (vec![5], vec![5]),
            (vec![0, 1], vec![2, 3]),
            (vec![1, 2, 3, 4, 2, 1], vec![4, 3, 2, 1, 2, 3]),
        ];
        for ell in 1..=3 {
            let k = SskKernel::new(ell)
                .with_decays(0.7, 0.4)
                .without_normalization();
            for (s, t) in &cases {
                let dp = k.eval_raw(s, t);
                let bf = brute_force(&k, s, t);
                assert!(
                    (dp - bf).abs() < 1e-9 * (1.0 + bf.abs()),
                    "ℓ={ell} s={s:?} t={t:?}: dp={dp} bf={bf}"
                );
            }
        }
    }

    /// The worked examples of the paper's Table I. Tokens: Rw=0, Rf=1,
    /// Ds=2, So=3, Bl=4, Fr=5.
    #[test]
    fn paper_table_one() {
        let k = SskKernel::new(5).with_decays(0.9, 0.6);
        let (tm, tg) = (0.9f64, 0.6f64);
        let seq1 = [0u8, 1, 2, 3, 2, 4, 0]; // RwRfDsSoDsBlRw
        let seq2 = [0u8, 1, 2, 5, 3, 4, 0]; // RwRfDsFrSoBlRw
        let seq3 = [0u8, 1, 2, 5, 4, 3, 4]; // RwRfDsFrBlSoBl
        let u1 = [0u8, 1, 2, 4, 0]; // RwRfDsBlRw
        let u2 = [0u8, 1, 2, 5]; // RwRfDsFr
        let u3 = [0u8, 1]; // RwRf

        let close = |a: f64, b: f64| (a - b).abs() < 1e-12;
        // Row 1: RwRfDsSoDsBlRw.
        assert!(close(
            k.contribution(&u1, &seq1),
            2.0 * tm.powi(5) * tg.powi(2)
        ));
        assert!(close(k.contribution(&u2, &seq1), 0.0));
        assert!(close(k.contribution(&u3, &seq1), tm.powi(2)));
        // Row 2: RwRfDsFrSoBlRw.
        assert!(close(k.contribution(&u1, &seq2), tm.powi(5) * tg.powi(2)));
        assert!(close(k.contribution(&u2, &seq2), tm.powi(4)));
        assert!(close(k.contribution(&u3, &seq2), tm.powi(2)));
        // Row 3: RwRfDsFrBlSoBl.
        assert!(close(k.contribution(&u1, &seq3), 0.0));
        assert!(close(k.contribution(&u2, &seq3), tm.powi(4)));
        assert!(close(k.contribution(&u3, &seq3), tm.powi(2)));
    }

    #[test]
    fn normalised_kernel_is_a_similarity() {
        let k = SskKernel::new(4);
        let a = [0u8, 1, 2, 3, 4];
        let b = [0u8, 1, 2, 4, 3];
        let c = [5u8, 6, 7, 8, 9];
        assert!((k.eval(&a[..], &a[..]) - 1.0).abs() < 1e-12);
        let ab = k.eval(&a[..], &b[..]);
        let ac = k.eval(&a[..], &c[..]);
        assert!(ab > ac, "shared prefixes must look more similar");
        assert!((0.0..=1.0 + 1e-12).contains(&ab));
        assert_eq!(ac, 0.0, "disjoint alphabets share no sub-sequence");
    }

    #[test]
    fn gap_decay_penalises_spread_matches() {
        let k = SskKernel::new(2)
            .with_decays(0.9, 0.3)
            .without_normalization();
        let tight = [0u8, 1, 9, 9, 9];
        let spread = [0u8, 9, 9, 9, 1];
        let probe = [0u8, 1];
        assert!(k.eval_raw(&probe, &tight) > k.eval_raw(&probe, &spread));
    }

    #[test]
    fn kernel_gram_matrix_is_positive_definite() {
        use crate::linalg::{Cholesky, Matrix};
        let k = SskKernel::new(3);
        let seqs: Vec<Vec<u8>> = vec![
            vec![0, 1, 2, 3],
            vec![3, 2, 1, 0],
            vec![0, 0, 1, 1],
            vec![2, 3, 0, 1],
            vec![1, 1, 1, 1],
        ];
        let gram = Matrix::from_fn(seqs.len(), seqs.len(), |i, j| {
            k.eval(&seqs[i][..], &seqs[j][..])
        });
        assert!(Cholesky::new(&gram, 1e-8).is_ok(), "gram must be PSD");
    }

    #[test]
    fn empty_sequences_are_handled() {
        let k = SskKernel::new(3);
        assert_eq!(k.eval_raw(&[], &[1, 2]), 0.0);
        assert_eq!(k.eval(&[][..], &[][..]), 1.0); // identical → similarity 1
        assert_eq!(k.eval(&[][..], &[1][..]), 0.0);
    }
}
