//! The surrogate lifecycle: one type owning **fit → extend → retrain →
//! forget** for a sequential optimiser's Gaussian process.
//!
//! Both BOiLS and the SBO baseline used to hand-roll the same
//! bookkeeping — an evals-since-retrain cadence counter, a carried
//! `(gp, fitted)` pair extended on non-retrain iterations, kernel
//! hyperparameters threaded between refits. [`Surrogate`] absorbs all of
//! it behind two calls: [`Surrogate::observe`] records an evaluation,
//! [`Surrogate::maybe_retrain`] returns the model to maximise the
//! acquisition against, deciding internally whether to retrain
//! hyperparameters (projected Adam on the training cadence), extend the
//! carried factor in `O(n²)` ([`Gp::extend`]), or refit from scratch.
//!
//! The *forget* stage is new: with [`SurrogateConfig::window`] set, the
//! training set is bounded — once more observations arrive than the
//! window holds, the oldest are evicted through a rank-1 Cholesky
//! downdate ([`Gp::downdate`], `O(n²)`) instead of ever rebuilding the
//! factor. The incumbent (best target seen) is pinned and never evicted,
//! so expected improvement always has the true incumbent in-model. A
//! bounded window turns the per-step surrogate cost from `O(n²)` growing
//! without bound into a constant once `n` passes the window — the
//! standard bounded-history trick behind trust-region BO at large
//! budgets.

use crate::gp::{Gp, TrainConfig, UpdateOutcome};
use crate::kernel::Kernel;
use crate::linalg::NotPositiveDefiniteError;

/// Settings for a [`Surrogate`].
#[derive(Clone, Debug)]
pub struct SurrogateConfig {
    /// GP observation noise.
    pub noise: f64,
    /// Hyperparameters are retrained once this many observations
    /// accumulate since the previous retrain (and always on the first
    /// [`Surrogate::maybe_retrain`] call).
    pub retrain_every: usize,
    /// Between retrains, extend the carried GP in `O(n²)` instead of
    /// refitting from scratch. `false` refits every call (the seed cost
    /// model); trajectories are identical either way.
    pub incremental: bool,
    /// Bounded-history window: `Some(w)` keeps at most `w` observations
    /// in the training set, evicting the oldest non-incumbent point (by a
    /// rank-1 downdate on the incremental path). `None` trains on the
    /// full history — byte-compatible with the pre-window optimisers.
    pub window: Option<usize>,
    /// Projected-Adam settings for hyperparameter retraining.
    pub train: TrainConfig,
}

/// Counters describing a [`Surrogate`]'s lifecycle so far.
///
/// Purely observational; folded into the optimisers' `RunDiagnostics`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SurrogateDiagnostics {
    /// Observation counts at which hyperparameters were retrained.
    pub retrains_at: Vec<usize>,
    /// Rank-1 factor extensions performed ([`Gp::extend`]).
    pub extends: usize,
    /// Rank-1 factor downdates performed (window evictions).
    pub downdates: usize,
    /// Incremental updates (extends *or* downdates) whose factor update
    /// failed numerically and fell back to an `O(n³)` full refit.
    pub fallback_refits: usize,
    /// Observations injected by [`Surrogate::seed`] (warm-start transfer
    /// from another circuit's history) rather than evaluated in this run.
    pub seeded: usize,
}

/// A Gaussian-process surrogate that owns its full lifecycle: data,
/// hyperparameters, retrain cadence, incremental factor updates, and
/// (optionally) sliding-window forgetting with incumbent pinning.
///
/// Targets are treated as *maximisation* values (the optimisers model
/// `−QoR`): the pinned incumbent is the observation with the largest `y`.
///
/// ```
/// use boils_gp::{Surrogate, SurrogateConfig, SskKernel, TrainConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut surrogate = Surrogate::new(
///     SskKernel::new(3),
///     SurrogateConfig {
///         noise: 1e-4,
///         retrain_every: 5,
///         incremental: true,
///         window: Some(8),
///         train: TrainConfig { steps: 3, ..TrainConfig::default() },
///     },
/// );
/// for i in 0..12u8 {
///     surrogate.observe(vec![i % 4, (i + 1) % 4, i % 3], f64::from(i) * 0.1);
/// }
/// let gp = surrogate.maybe_retrain()?;
/// assert!(gp.train_inputs().len() <= 8);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Surrogate<K, X> {
    template: K,
    params: Vec<f64>,
    config: SurrogateConfig,
    xs: Vec<X>,
    ys: Vec<f64>,
    /// Global observation indices currently in (or queued for) the
    /// training set, in GP row order (ascending — insertion order).
    active: Vec<usize>,
    /// Observations already moved into `active`.
    synced: usize,
    gp: Option<Gp<K, X>>,
    evals_since_retrain: usize,
    first: bool,
    diagnostics: SurrogateDiagnostics,
}

impl<K, X> Surrogate<K, X>
where
    K: Kernel<X> + Clone,
    X: Clone,
{
    /// A surrogate with no observations. `template` supplies the kernel
    /// shape and the initial hyperparameters; retrains update the
    /// parameter vector in place across the run.
    pub fn new(template: K, config: SurrogateConfig) -> Surrogate<K, X> {
        let params = template.params();
        Surrogate {
            template,
            params,
            config,
            xs: Vec::new(),
            ys: Vec::new(),
            active: Vec::new(),
            synced: 0,
            gp: None,
            evals_since_retrain: 0,
            first: true,
            diagnostics: SurrogateDiagnostics::default(),
        }
    }

    /// Records one evaluated point. Cheap — the model is only updated by
    /// the next [`Surrogate::maybe_retrain`] call, so a whole batch of
    /// observations costs one factor update pass.
    pub fn observe(&mut self, x: X, y: f64) {
        self.xs.push(x);
        self.ys.push(y);
        self.evals_since_retrain += 1;
    }

    /// Records a *transferred* observation — e.g. a (sequence, cost) pair
    /// from a similar circuit's recorded history — without advancing the
    /// retrain cadence: seeds bias where the model starts, they are not
    /// fresh evidence about this run's objective, so they must not move
    /// *when* hyperparameters retrain relative to an unseeded run.
    pub fn seed(&mut self, x: X, y: f64) {
        self.xs.push(x);
        self.ys.push(y);
        self.diagnostics.seeded += 1;
    }

    /// Total observations recorded (evicted ones included).
    pub fn observations(&self) -> usize {
        self.xs.len()
    }

    /// Global indices of the observations currently in the training set,
    /// in GP row order (only meaningful after a
    /// [`Surrogate::maybe_retrain`] call synchronised pending points).
    pub fn window_indices(&self) -> &[usize] {
        &self.active
    }

    /// The recorded observation at a global index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn observation(&self, index: usize) -> (&X, f64) {
        (&self.xs[index], self.ys[index])
    }

    /// The current model, if [`Surrogate::maybe_retrain`] has run.
    pub fn gp(&self) -> Option<&Gp<K, X>> {
        self.gp.as_ref()
    }

    /// The current kernel hyperparameters (template values until the
    /// first fit; thereafter whatever the last fit/retrain produced).
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Lifecycle counters so far.
    pub fn diagnostics(&self) -> &SurrogateDiagnostics {
        &self.diagnostics
    }

    /// The kernel template every fit clones. Shared state attached to the
    /// template — e.g. an SSK [`crate::MatchStore`] — is held here for the
    /// surrogate's whole life, so per-pair work survives across retrains;
    /// this accessor exposes it for diagnostics and tests.
    pub fn template(&self) -> &K {
        &self.template
    }

    /// Brings the model up to date with every observation and returns it.
    ///
    /// Decides the whole lifecycle internally:
    ///
    /// * **retrain** — on the first call, and whenever
    ///   [`SurrogateConfig::retrain_every`] observations accumulated since
    ///   the last retrain: hyperparameters are refit by projected Adam on
    ///   the retained window, then the GP is rebuilt at the optimum;
    /// * **extend** — otherwise, with
    ///   [`SurrogateConfig::incremental`] set, pending observations are
    ///   folded into the carried factor in `O(n²)` each;
    /// * **forget** — with a [`SurrogateConfig::window`], the oldest
    ///   non-incumbent points are then evicted (rank-1 downdates on the
    ///   incremental path, simple exclusion on refit paths) until the
    ///   window bound holds;
    /// * **refit** — without `incremental`, every call fits from scratch
    ///   at the carried hyperparameters.
    ///
    /// # Errors
    ///
    /// Propagates [`NotPositiveDefiniteError`] if no model can be fitted
    /// (incremental failures fall back to full refits first, counted in
    /// [`SurrogateDiagnostics::fallback_refits`]).
    ///
    /// # Panics
    ///
    /// Panics if called before any [`Surrogate::observe`].
    pub fn maybe_retrain(&mut self) -> Result<&Gp<K, X>, NotPositiveDefiniteError> {
        assert!(!self.xs.is_empty(), "no observations to fit a surrogate to");
        let retrain = self.first || self.evals_since_retrain >= self.config.retrain_every.max(1);
        if retrain {
            self.evals_since_retrain = 0;
            self.diagnostics.retrains_at.push(self.xs.len());
        }
        self.first = false;
        let pending_from = self.synced;
        self.synced = self.xs.len();
        let carried = if self.config.incremental && !retrain {
            self.gp.take()
        } else {
            None
        };
        let fitted = match carried {
            Some(gp) => {
                let result = self.update_incrementally(gp, pending_from);
                if result.is_err() {
                    // The carried model is lost mid-update (extend/downdate
                    // errors are already full-refit fallbacks, so the
                    // numerical state is desperate), but the *data* must
                    // not be: mark every pending observation retained so a
                    // retried call rebuilds from scratch on the full
                    // retained set instead of silently dropping points.
                    while self.active.last().is_some_and(|&i| i >= pending_from) {
                        self.active.pop();
                    }
                    self.active.extend(pending_from..self.xs.len());
                    self.evict_by_exclusion();
                }
                result
            }
            None => {
                self.active.extend(pending_from..self.xs.len());
                self.evict_by_exclusion();
                self.gp = None;
                let xs: Vec<X> = self.active.iter().map(|&i| self.xs[i].clone()).collect();
                let ys: Vec<f64> = self.active.iter().map(|&i| self.ys[i]).collect();
                let mut kernel = self.template.clone();
                kernel.set_params(&self.params);
                if retrain {
                    Gp::fit_with_adam(kernel, xs, ys, self.config.noise, &self.config.train)
                } else {
                    Gp::fit(kernel, xs, ys, self.config.noise)
                }
            }
        };
        let gp = fitted?;
        self.params = gp.kernel().params();
        self.gp = Some(gp);
        Ok(self.gp.as_ref().expect("model just stored"))
    }

    /// Folds pending observations into the carried factor (extends), then
    /// enforces the window (downdates). On error the carried model is
    /// consumed; the caller restores the retention bookkeeping.
    fn update_incrementally(
        &mut self,
        mut gp: Gp<K, X>,
        pending_from: usize,
    ) -> Result<Gp<K, X>, NotPositiveDefiniteError> {
        for i in pending_from..self.xs.len() {
            let (next, outcome) = gp.extend_with_outcome(self.xs[i].clone(), self.ys[i])?;
            gp = next;
            self.active.push(i);
            self.diagnostics.extends += 1;
            if outcome == UpdateOutcome::Refitted {
                self.diagnostics.fallback_refits += 1;
            }
        }
        if let Some(window) = self.config.window {
            while self.active.len() > window.max(1) {
                let victim = self.eviction_position();
                let (next, outcome) = gp.downdate(victim)?;
                gp = next;
                self.active.remove(victim);
                self.diagnostics.downdates += 1;
                if outcome == UpdateOutcome::Refitted {
                    self.diagnostics.fallback_refits += 1;
                }
            }
        }
        Ok(gp)
    }

    /// Shrinks the retained set to the window bound without touching any
    /// factor — the refit paths simply exclude the evicted points.
    fn evict_by_exclusion(&mut self) {
        if let Some(window) = self.config.window {
            while self.active.len() > window.max(1) {
                let victim = self.eviction_position();
                self.active.remove(victim);
            }
        }
    }

    /// The `active` position to evict next: the oldest retained point,
    /// unless it is the pinned incumbent (largest target, earliest on
    /// ties), in which case the second-oldest goes.
    fn eviction_position(&self) -> usize {
        debug_assert!(self.active.len() >= 2, "eviction needs two candidates");
        let mut best = 0;
        for (pos, &idx) in self.active.iter().enumerate() {
            if self.ys[idx] > self.ys[self.active[best]] {
                best = pos;
            }
        }
        usize::from(best == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssk::SskKernel;

    fn config(window: Option<usize>, retrain_every: usize, incremental: bool) -> SurrogateConfig {
        SurrogateConfig {
            noise: 1e-4,
            retrain_every,
            incremental,
            window,
            train: TrainConfig {
                steps: 3,
                ..TrainConfig::default()
            },
        }
    }

    fn seq(seed: usize) -> Vec<u8> {
        (0..6).map(|i| ((seed * 7 + i * 3) % 11) as u8).collect()
    }

    #[test]
    fn retrain_cadence_counts_observations() {
        let mut s: Surrogate<SskKernel, Vec<u8>> =
            Surrogate::new(SskKernel::new(3), config(None, 4, true));
        for i in 0..6 {
            s.observe(seq(i), i as f64 * 0.1);
        }
        s.maybe_retrain().expect("fit"); // first call always retrains
        for i in 6..9 {
            s.observe(seq(i), i as f64 * 0.1);
            s.maybe_retrain().expect("fit");
        }
        // 6 observations at the first retrain, then 3 more: the second
        // retrain fires when 4 accumulate.
        s.observe(seq(9), 0.05);
        s.maybe_retrain().expect("fit");
        assert_eq!(s.diagnostics().retrains_at, vec![6, 10]);
        assert_eq!(s.diagnostics().extends, 3);
    }

    #[test]
    fn window_bounds_the_training_set_and_pins_the_incumbent() {
        let mut s: Surrogate<SskKernel, Vec<u8>> =
            Surrogate::new(SskKernel::new(3), config(Some(4), 100, true));
        // Observation 2 is the incumbent (largest target).
        let ys = [0.1, 0.2, 5.0, 0.3, 0.4, 0.5, 0.6, 0.7];
        for (i, &y) in ys.iter().enumerate() {
            s.observe(seq(i), y);
            s.maybe_retrain().expect("fit");
        }
        let retained = s.window_indices();
        assert_eq!(retained.len(), 4);
        assert!(
            retained.contains(&2),
            "incumbent evicted: retained {retained:?}"
        );
        assert_eq!(s.gp().expect("fitted").train_inputs().len(), 4);
        assert!(s.diagnostics().downdates >= 4);
    }

    #[test]
    fn window_none_retains_everything() {
        let mut s: Surrogate<SskKernel, Vec<u8>> =
            Surrogate::new(SskKernel::new(3), config(None, 100, true));
        for i in 0..10 {
            s.observe(seq(i), i as f64);
            s.maybe_retrain().expect("fit");
        }
        assert_eq!(s.window_indices().len(), 10);
        assert_eq!(s.diagnostics().downdates, 0);
    }

    #[test]
    fn non_incremental_path_respects_the_window_too() {
        let mut s: Surrogate<SskKernel, Vec<u8>> =
            Surrogate::new(SskKernel::new(3), config(Some(3), 100, false));
        for i in 0..7 {
            s.observe(seq(i), -(i as f64));
            s.maybe_retrain().expect("fit");
        }
        assert_eq!(s.gp().expect("fitted").train_inputs().len(), 3);
        // Incumbent is observation 0 (largest −i): pinned through every
        // eviction even on the refit path.
        assert!(s.window_indices().contains(&0));
        assert_eq!(s.diagnostics().downdates, 0, "refit path never downdates");
    }

    #[test]
    fn windowed_posterior_matches_scratch_fit_on_the_retained_window() {
        let mut s: Surrogate<SskKernel, Vec<u8>> =
            Surrogate::new(SskKernel::new(3), config(Some(5), 1000, true));
        for i in 0..12 {
            s.observe(seq(i), (i as f64 * 0.9).sin());
            s.maybe_retrain().expect("fit");
        }
        let gp = s.gp().expect("fitted");
        let xs: Vec<Vec<u8>> = s.window_indices().iter().map(|&i| seq(i)).collect();
        let ys: Vec<f64> = s
            .window_indices()
            .iter()
            .map(|&i| s.observation(i).1)
            .collect();
        let scratch = Gp::fit(gp.kernel().clone(), xs, ys, 1e-4).expect("fit");
        for probe in (0..4).map(|i| seq(i * 5 + 1)) {
            let (m_w, v_w) = gp.predict(&probe);
            let (m_s, v_s) = scratch.predict(&probe);
            assert!((m_w - m_s).abs() < 1e-8, "mean {m_w} vs {m_s}");
            assert!((v_w - v_s).abs() < 1e-8, "var {v_w} vs {v_s}");
        }
    }

    #[test]
    fn match_store_is_pinned_across_retrains() {
        let mut s: Surrogate<SskKernel, Vec<u8>> = Surrogate::new(
            SskKernel::new(3).with_match_caching(),
            config(None, 4, false),
        );
        for i in 0..4 {
            s.observe(seq(i), i as f64 * 0.1);
        }
        s.maybe_retrain().expect("fit");
        let after_first = s
            .template()
            .match_store()
            .expect("match caching on")
            .stats();
        assert!(
            after_first.misses > 0,
            "first Gram fill populates the store"
        );
        for i in 4..8 {
            s.observe(seq(i), i as f64 * 0.1);
        }
        s.maybe_retrain().expect("fit");
        let after_second = s
            .template()
            .match_store()
            .expect("match caching on")
            .stats();
        // The store lives on the surrogate's template, not on the per-fit
        // kernel clones, so the second retrain's Gram fill hits the match
        // structures the first retrain built.
        assert!(
            after_second.hits > after_first.hits,
            "second retrain never hit the pinned store: {after_second:?}"
        );
        // And it only builds structures for pairs involving the four new
        // observations: every pair of the original training set is warm.
        let unique_pairs = |n: usize| n * (n + 1) / 2;
        assert_eq!(after_second.misses, unique_pairs(8));
    }

    #[test]
    fn seeds_enter_the_model_without_advancing_the_retrain_cadence() {
        let mut s: Surrogate<SskKernel, Vec<u8>> =
            Surrogate::new(SskKernel::new(3), config(None, 4, true));
        for i in 0..3 {
            s.seed(seq(i + 20), -1.0 - i as f64 * 0.1);
        }
        for i in 0..4 {
            s.observe(seq(i), i as f64 * 0.1);
        }
        s.maybe_retrain().expect("fit");
        // All seven points are in the training set...
        assert_eq!(s.gp().expect("fitted").train_inputs().len(), 7);
        assert_eq!(s.diagnostics().seeded, 3);
        // ...but the cadence counts real observations only: the second
        // retrain fires after 4 more `observe` calls, exactly as it would
        // have without any seeds.
        for i in 4..8 {
            s.observe(seq(i), i as f64 * 0.1);
            s.maybe_retrain().expect("fit");
        }
        assert_eq!(s.diagnostics().retrains_at, vec![7, 11]);
    }

    #[test]
    fn batch_observations_cost_one_update_pass() {
        let mut s: Surrogate<SskKernel, Vec<u8>> =
            Surrogate::new(SskKernel::new(3), config(None, 1000, true));
        for i in 0..4 {
            s.observe(seq(i), i as f64 * 0.2);
        }
        s.maybe_retrain().expect("fit");
        for i in 4..8 {
            s.observe(seq(i), i as f64 * 0.2);
        }
        s.maybe_retrain().expect("fit");
        assert_eq!(s.diagnostics().extends, 4, "one extend per pending point");
        assert_eq!(s.gp().expect("fitted").train_inputs().len(), 8);
    }
}
