//! Batched (q-point) expected improvement.
//!
//! Exact q-EI has no convenient closed form, so this module provides the
//! two standard tools for proposing and judging a batch:
//!
//! * [`ConstantLiar`] — the greedy constant-liar heuristic (Ginsbourger et
//!   al., 2010): after each accepted candidate, pretend its outcome was
//!   some fixed "lie" (BOiLS uses the incumbent), extend a *scratch* copy
//!   of the GP by that fantasy observation in `O(n²)` ([`Gp::extend`]) and
//!   re-maximise single-point EI against the lied model. The fantasy
//!   collapses the posterior variance around accepted candidates, so the
//!   next maximisation is pushed elsewhere — which is exactly what makes
//!   the q proposals diverse. The base GP is never modified; the lies are
//!   discarded when the liar is dropped.
//! * [`qei_monte_carlo`] — an unbiased Monte-Carlo estimate of the joint
//!   criterion `qEI(X) = E[max_i (g(x_i) − best)⁺]` by sampling the joint
//!   posterior over the batch. Too slow for the inner proposal loop, but
//!   the right yardstick for tests and reports: it quantifies how much a
//!   batch is worth *jointly* (a batch of q duplicates scores no better
//!   than its single best point).

use rand::Rng;

use crate::gp::Gp;
use crate::kernel::Kernel;
use crate::linalg::NotPositiveDefiniteError;

/// Greedy constant-liar batch construction over a borrowed GP.
///
/// ```
/// use boils_gp::{ConstantLiar, Gp, SquaredExponential};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let xs: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 0.8).sin()).collect();
/// let gp = Gp::fit(SquaredExponential::new(1), xs, ys, 1e-6)?;
/// let incumbent = 0.99;
///
/// let mut liar = ConstantLiar::new(&gp, incumbent);
/// let (_, var_before) = liar.model().predict(&vec![2.5]);
/// liar.accept(vec![2.5])?;
/// let (_, var_after) = liar.model().predict(&vec![2.5]);
/// // The lie collapses uncertainty at the accepted point …
/// assert!(var_after < var_before);
/// // … while the base GP is untouched.
/// assert_eq!(gp.predict(&vec![2.5]).1, var_before);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ConstantLiar<'a, K, X> {
    base: &'a Gp<K, X>,
    lied: Option<Gp<K, X>>,
    lie: f64,
}

impl<'a, K, X> ConstantLiar<'a, K, X>
where
    K: Kernel<X> + Clone,
    X: Clone,
{
    /// A liar over `base` that will hallucinate `lie` (typically the
    /// incumbent objective value) for every accepted candidate.
    pub fn new(base: &'a Gp<K, X>, lie: f64) -> ConstantLiar<'a, K, X> {
        ConstantLiar {
            base,
            lied: None,
            lie,
        }
    }

    /// The model to maximise the acquisition against: the base GP until the
    /// first accepted candidate, then the base plus all accepted lies.
    pub fn model(&self) -> &Gp<K, X> {
        self.lied.as_ref().unwrap_or(self.base)
    }

    /// The number of fantasy observations currently held.
    pub fn lies(&self) -> usize {
        self.lied.as_ref().map_or(0, |gp| {
            gp.train_inputs().len() - self.base.train_inputs().len()
        })
    }

    /// Accepts a candidate into the batch: extends the scratch model by the
    /// fantasy observation `(x, lie)`. The base GP is cloned lazily on the
    /// first accept, so a batch of one never pays for the copy.
    ///
    /// # Errors
    ///
    /// If the extension cannot be factorised even via [`Gp::fit`] fallback,
    /// the scratch model reverts to the base GP and the error is returned;
    /// the liar stays usable (proposals degrade to the unlied acquisition,
    /// which the caller's deduplication must then diversify).
    pub fn accept(&mut self, x: X) -> Result<(), NotPositiveDefiniteError> {
        let model = match self.lied.take() {
            Some(gp) => gp,
            None => self.base.clone(),
        };
        match model.extend(x, self.lie) {
            Ok(gp) => {
                self.lied = Some(gp);
                Ok(())
            }
            Err(e) => {
                self.lied = None;
                Err(e)
            }
        }
    }
}

/// Monte-Carlo estimate of the joint q-EI of a batch for **maximisation**:
/// `qEI(X) = E[max_i (g(x_i) − best)⁺]` under the joint posterior
/// `g ~ GP | data`, averaged over `samples` draws.
///
/// Returns 0 for an empty batch.
///
/// # Errors
///
/// Returns an error if the joint posterior covariance over the batch cannot
/// be factorised.
pub fn qei_monte_carlo<K, X, R>(
    gp: &Gp<K, X>,
    batch: &[X],
    best: f64,
    samples: usize,
    rng: &mut R,
) -> Result<f64, NotPositiveDefiniteError>
where
    K: Kernel<X>,
    R: Rng,
{
    if batch.is_empty() {
        return Ok(0.0);
    }
    let mut total = 0.0;
    for _ in 0..samples.max(1) {
        let draw = gp.sample_posterior(batch, rng)?;
        let improvement = draw
            .iter()
            .map(|&g| (g - best).max(0.0))
            .fold(0.0, f64::max);
        total += improvement;
    }
    Ok(total / samples.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::expected_improvement;
    use crate::kernel::SquaredExponential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_gp() -> Gp<SquaredExponential, Vec<f64>> {
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 * 0.7]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0]).sin()).collect();
        Gp::fit(SquaredExponential::new(1), xs, ys, 1e-6).expect("spd")
    }

    #[test]
    fn lies_collapse_variance_and_leave_the_base_untouched() {
        let gp = toy_gp();
        let probe = vec![2.45];
        let (base_mean, base_var) = gp.predict(&probe);
        let mut liar = ConstantLiar::new(&gp, 0.9);
        assert_eq!(liar.lies(), 0);
        liar.accept(probe.clone()).expect("extend");
        assert_eq!(liar.lies(), 1);
        let (_, lied_var) = liar.model().predict(&probe);
        assert!(
            lied_var < base_var * 0.5,
            "lie failed to collapse variance: {lied_var} vs {base_var}"
        );
        // The borrowed base model must be bit-identical afterwards.
        drop(liar);
        let (m, v) = gp.predict(&probe);
        assert_eq!(m.to_bits(), base_mean.to_bits());
        assert_eq!(v.to_bits(), base_var.to_bits());
    }

    #[test]
    fn successive_lies_accumulate() {
        let gp = toy_gp();
        let mut liar = ConstantLiar::new(&gp, 0.5);
        for (i, x) in [vec![1.1], vec![3.3], vec![4.9]].into_iter().enumerate() {
            liar.accept(x).expect("extend");
            assert_eq!(liar.lies(), i + 1);
        }
        assert_eq!(
            liar.model().train_inputs().len(),
            gp.train_inputs().len() + 3
        );
    }

    #[test]
    fn lied_acquisition_moves_away_from_accepted_points() {
        // After lying at the EI argmax of a coarse grid, the lied EI at that
        // point drops below the best EI elsewhere — the next greedy pick is
        // a different point, which is the entire mechanism behind the
        // constant-liar batch being diverse.
        let gp = toy_gp();
        let grid: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 * 0.1]).collect();
        let incumbent = 0.95;
        let ei_on = |model: &Gp<SquaredExponential, Vec<f64>>, x: &Vec<f64>| {
            let (m, v) = model.predict(x);
            expected_improvement(m, v, incumbent)
        };
        let first = grid
            .iter()
            .max_by(|a, b| ei_on(&gp, a).partial_cmp(&ei_on(&gp, b)).expect("finite"))
            .expect("non-empty grid")
            .clone();
        let mut liar = ConstantLiar::new(&gp, incumbent);
        liar.accept(first.clone()).expect("extend");
        let second = grid
            .iter()
            .max_by(|a, b| {
                ei_on(liar.model(), a)
                    .partial_cmp(&ei_on(liar.model(), b))
                    .expect("finite")
            })
            .expect("non-empty grid")
            .clone();
        assert_ne!(first, second, "the lie did not diversify the batch");
    }

    #[test]
    fn qei_of_a_diverse_batch_beats_its_best_singleton() {
        let gp = toy_gp();
        let best = 0.8;
        let mut rng = StdRng::seed_from_u64(9);
        let a = vec![2.4];
        let b = vec![5.2];
        let single_a =
            qei_monte_carlo(&gp, std::slice::from_ref(&a), best, 4000, &mut rng).expect("mc");
        let single_b =
            qei_monte_carlo(&gp, std::slice::from_ref(&b), best, 4000, &mut rng).expect("mc");
        let joint = qei_monte_carlo(&gp, &[a, b], best, 4000, &mut rng).expect("mc");
        assert!(
            joint >= single_a.max(single_b) - 0.01,
            "joint {joint} below singletons {single_a}/{single_b}"
        );
    }

    #[test]
    fn qei_of_duplicates_adds_nothing() {
        let gp = toy_gp();
        let best = 0.8;
        let mut rng = StdRng::seed_from_u64(11);
        let x = vec![2.4];
        let single =
            qei_monte_carlo(&gp, std::slice::from_ref(&x), best, 4000, &mut rng).expect("mc");
        let doubled = qei_monte_carlo(&gp, &[x.clone(), x], best, 4000, &mut rng).expect("mc");
        assert!(
            (doubled - single).abs() < 0.02,
            "duplicate inflated qEI: {doubled} vs {single}"
        );
    }

    #[test]
    fn qei_mc_tracks_analytic_single_point_ei() {
        let gp = toy_gp();
        let best = 0.7;
        let probe = vec![2.9];
        let (mean, var) = gp.predict(&probe);
        let analytic = expected_improvement(mean, var, best);
        let mut rng = StdRng::seed_from_u64(13);
        let mc = qei_monte_carlo(&gp, &[probe], best, 20_000, &mut rng).expect("mc");
        assert!(
            (mc - analytic).abs() < 0.02,
            "MC {mc} vs analytic {analytic}"
        );
    }

    #[test]
    fn empty_batch_has_zero_qei() {
        let gp = toy_gp();
        let mut rng = StdRng::seed_from_u64(1);
        let batch: Vec<Vec<f64>> = Vec::new();
        assert_eq!(
            qei_monte_carlo(&gp, &batch, 0.0, 100, &mut rng).expect("mc"),
            0.0
        );
    }
}
