//! Kernel abstractions and the squared-exponential (SE) kernel with
//! per-dimension automatic-relevance-determination lengthscales.

/// A positive-definite covariance function over inputs of type `X`.
///
/// Hyperparameters are exposed as a flat vector with box bounds so a single
/// projected-gradient trainer serves every kernel.
pub trait Kernel<X: ?Sized> {
    /// Evaluates `k(a, b)`.
    fn eval(&self, a: &X, b: &X) -> f64;

    /// A per-point summary that [`Kernel::eval_with_info`] can reuse across
    /// many evaluations involving the same point — e.g. the raw
    /// self-similarity `k̃(x, x)` a normalised string kernel divides by.
    /// Kernels with nothing to cache return `0.0` (the value is opaque to
    /// callers; it is only ever passed back to the same kernel).
    ///
    /// Summaries depend on the hyperparameters: recompute them after
    /// [`Kernel::set_params`].
    fn self_info(&self, x: &X) -> f64 {
        let _ = x;
        0.0
    }

    /// Evaluates `k(a, b)` given the points' [`Kernel::self_info`]
    /// summaries. Must return exactly what [`Kernel::eval`] would; the
    /// default ignores the summaries and delegates.
    fn eval_with_info(&self, a: &X, info_a: f64, b: &X, info_b: f64) -> f64 {
        let _ = (info_a, info_b);
        self.eval(a, b)
    }

    /// [`Kernel::eval_with_info`] for *training pairs* — inputs that both
    /// belong (or are being added) to a GP's training set, and will
    /// therefore be evaluated again: Gram fills, marginal-likelihood
    /// objectives, factor extensions. Must return bit-exactly what
    /// [`Kernel::eval_with_info`] would; the default delegates.
    ///
    /// Kernels with expensive per-pair structure worth memoising (e.g.
    /// [`crate::SskKernel`]'s decay-independent token-match DP state)
    /// override this to consult a cache. The one-shot pairs of the
    /// prediction hot path — thousands of acquisition probes per BO
    /// iteration, each paired once with every training point — stay on
    /// [`Kernel::eval_with_info`] and never touch (or pollute) the cache.
    fn eval_training(&self, a: &X, info_a: f64, b: &X, info_b: f64) -> f64 {
        self.eval_with_info(a, info_a, b, info_b)
    }

    /// Current hyperparameter vector.
    fn params(&self) -> Vec<f64>;

    /// Replaces the hyperparameter vector.
    ///
    /// # Panics
    ///
    /// Implementations panic if the length disagrees with [`Kernel::params`].
    fn set_params(&mut self, params: &[f64]);

    /// Box bounds, one `(lower, upper)` pair per hyperparameter.
    fn param_bounds(&self) -> Vec<(f64, f64)>;
}

/// Owned-vector convenience: any kernel over `[f64]` slices also works on
/// `Vec<f64>` inputs (as stored by [`crate::Gp`]).
impl<K: Kernel<[f64]>> Kernel<Vec<f64>> for K {
    fn eval(&self, a: &Vec<f64>, b: &Vec<f64>) -> f64 {
        Kernel::<[f64]>::eval(self, a, b)
    }

    fn self_info(&self, x: &Vec<f64>) -> f64 {
        Kernel::<[f64]>::self_info(self, x)
    }

    fn eval_with_info(&self, a: &Vec<f64>, info_a: f64, b: &Vec<f64>, info_b: f64) -> f64 {
        Kernel::<[f64]>::eval_with_info(self, a, info_a, b, info_b)
    }

    fn eval_training(&self, a: &Vec<f64>, info_a: f64, b: &Vec<f64>, info_b: f64) -> f64 {
        Kernel::<[f64]>::eval_training(self, a, info_a, b, info_b)
    }

    fn params(&self) -> Vec<f64> {
        Kernel::<[f64]>::params(self)
    }

    fn set_params(&mut self, params: &[f64]) {
        Kernel::<[f64]>::set_params(self, params)
    }

    fn param_bounds(&self) -> Vec<(f64, f64)> {
        Kernel::<[f64]>::param_bounds(self)
    }
}

/// The squared-exponential (RBF) kernel with ARD lengthscales:
/// `k(x, x') = σ² exp(−½ Σ_d (x_d − x'_d)² / ℓ_d²)`.
///
/// ```
/// use boils_gp::{Kernel, SquaredExponential};
///
/// let k = SquaredExponential::new(3);
/// assert!((k.eval(&[0.0, 0.0, 0.0][..], &[0.0, 0.0, 0.0][..]) - 1.0).abs() < 1e-12);
/// assert!(k.eval(&[0.0, 0.0, 0.0][..], &[9.0, 9.0, 9.0][..]) < 1e-6);
/// ```
#[derive(Clone, Debug)]
pub struct SquaredExponential {
    lengthscales: Vec<f64>,
    variance: f64,
}

impl SquaredExponential {
    /// A unit-variance kernel with unit lengthscales over `dims` inputs.
    pub fn new(dims: usize) -> SquaredExponential {
        SquaredExponential {
            lengthscales: vec![1.0; dims],
            variance: 1.0,
        }
    }

    /// Overrides the signal variance σ².
    pub fn with_variance(mut self, variance: f64) -> SquaredExponential {
        assert!(variance > 0.0);
        self.variance = variance;
        self
    }

    /// The input dimensionality.
    pub fn dims(&self) -> usize {
        self.lengthscales.len()
    }
}

impl Kernel<[f64]> for SquaredExponential {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), self.lengthscales.len());
        assert_eq!(b.len(), self.lengthscales.len());
        let r2: f64 = a
            .iter()
            .zip(b)
            .zip(&self.lengthscales)
            .map(|((x, y), l)| {
                let d = (x - y) / l;
                d * d
            })
            .sum();
        self.variance * (-0.5 * r2).exp()
    }

    fn params(&self) -> Vec<f64> {
        let mut p = self.lengthscales.clone();
        p.push(self.variance);
        p
    }

    fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.lengthscales.len() + 1);
        self.lengthscales
            .copy_from_slice(&params[..params.len() - 1]);
        self.variance = params[params.len() - 1];
    }

    fn param_bounds(&self) -> Vec<(f64, f64)> {
        let mut b = vec![(1e-2, 1e2); self.lengthscales.len()];
        b.push((1e-4, 1e3)); // variance
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn se_is_symmetric_and_bounded() {
        let k = SquaredExponential::new(2).with_variance(2.5);
        let a = [0.3, -1.0];
        let b = [1.2, 0.5];
        assert!((k.eval(&a[..], &b[..]) - k.eval(&b[..], &a[..])).abs() < 1e-15);
        assert!(k.eval(&a[..], &b[..]) <= 2.5);
        assert!((k.eval(&a[..], &a[..]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn lengthscales_control_decay() {
        let mut k = SquaredExponential::new(1);
        let near = Kernel::<[f64]>::eval(&k, &[0.0], &[1.0]);
        Kernel::<[f64]>::set_params(&mut k, &[10.0, 1.0]); // longer → slower decay
        let far = Kernel::<[f64]>::eval(&k, &[0.0], &[1.0]);
        assert!(far > near);
    }

    #[test]
    fn params_round_trip() {
        let mut k = SquaredExponential::new(3);
        let p = vec![0.5, 2.0, 1.5, 3.0];
        Kernel::<[f64]>::set_params(&mut k, &p);
        assert_eq!(Kernel::<[f64]>::params(&k), p);
        assert_eq!(Kernel::<[f64]>::param_bounds(&k).len(), 4);
    }
}
