//! Prints the default-size statistics of every benchmark plus the time of a
//! representative QoR evaluation (resyn2 + mapping) — used to calibrate the
//! experiment harness budgets.

use boils_circuits::{Benchmark, CircuitSpec};

fn main() {
    println!(
        "{:<12} {:>6} {:>6} {:>6} {:>6}",
        "circuit", "pis", "pos", "ands", "lev"
    );
    for b in Benchmark::ALL {
        let aig = CircuitSpec::new(b).build();
        println!(
            "{:<12} {:>6} {:>6} {:>6} {:>6}",
            b.name(),
            aig.num_pis(),
            aig.num_pos(),
            aig.num_ands(),
            aig.depth()
        );
    }
}
