//! Trajectory-level bit-identity of the sim-tier fraig sweep: along a full
//! K = 20 synthesis trajectory (the persist harness's fixed sequence over
//! the whole transform alphabet) every intermediate state must fraig to
//! byte-identical AIGs under the rewritten and the reference sweep.
//!
//! This is the end-to-end guarantee the persistent prefix store relies on:
//! cached intermediates produced before this optimisation remain valid
//! after it.

use boils_circuits::{Benchmark, CircuitSpec};
use boils_synth::{fraig_reference_with, fraig_with, FraigConfig, Transform};

/// The persist harness's fixed K = 20 trajectory over the full alphabet.
const TRAJECTORY: [u8; 20] = [6, 0, 2, 7, 4, 1, 3, 6, 5, 8, 9, 10, 0, 6, 2, 4, 7, 1, 3, 6];

#[test]
fn fraig_is_bit_identical_along_the_full_adder_trajectory() {
    let config = FraigConfig::default();
    let mut state = CircuitSpec::new(Benchmark::Adder).bits(8).build();
    for (len, &token) in TRAJECTORY.iter().enumerate() {
        let new = fraig_with(&state, &config);
        let old = fraig_reference_with(&state, &config);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        new.write_aig_binary(&mut a).expect("write new");
        old.write_aig_binary(&mut b).expect("write old");
        assert_eq!(
            a, b,
            "prefix of length {len}: sim-tier fraig diverged from reference"
        );
        state = Transform::from_index(token as usize).apply(&state);
    }
}
