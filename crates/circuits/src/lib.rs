//! # boils-circuits — EPFL-style arithmetic benchmark generators
//!
//! Parametric structural generators for the ten EPFL arithmetic benchmarks
//! the BOiLS paper evaluates on: adder, barrel shifter, divisor, hypotenuse,
//! log2, max, multiplier, sine, square root and square. Each generator is
//! validated bit-exactly against an integer [reference model](model) through
//! AIG simulation.
//!
//! Widths are configurable; the defaults are scaled down from the EPFL
//! originals (e.g. a 8-bit instead of 64-bit multiplier) so that full
//! optimisation sweeps run on a single machine — see `DESIGN.md`.
//!
//! ## Example
//!
//! ```
//! use boils_circuits::{Benchmark, CircuitSpec};
//!
//! let aig = CircuitSpec::new(Benchmark::Multiplier).bits(6).build();
//! assert_eq!(aig.num_pis(), 12);
//! assert_eq!(aig.num_pos(), 12);
//! // 21 * 3 = 63: drive the inputs and read back the product.
//! let mut inputs = vec![0u64; 12];
//! for i in 0..6 {
//!     inputs[i] = (21 >> i & 1) * !0u64;
//!     inputs[6 + i] = (3 >> i & 1) * !0u64;
//! }
//! let out = aig.simulate(&inputs);
//! let product: u64 = out.iter().enumerate().map(|(i, w)| (w & 1) << i).sum();
//! assert_eq!(product, 63);
//! ```

mod benchmarks;
mod extra;
pub mod words;

pub use crate::benchmarks::{log2_frac_bits, log2_int_bits, model, Benchmark, CircuitSpec};
pub use crate::extra::{alu, priority_encoder};
