//! Extension circuits beyond the paper's ten benchmarks — useful for
//! downstream users and for exercising the optimiser on control-dominated
//! (rather than arithmetic) structures.

use boils_aig::{Aig, Lit};

use crate::words::{add, less_than, mux_word, sub, Word};

/// An `n`-input priority encoder: outputs the index of the highest set
/// input bit plus a `valid` flag, `⌈log2 n⌉ + 1` outputs in total.
///
/// ```
/// use boils_circuits::priority_encoder;
///
/// let aig = priority_encoder(8);
/// assert_eq!(aig.num_pis(), 8);
/// assert_eq!(aig.num_pos(), 4); // 3 index bits + valid
/// aig.check().unwrap();
/// ```
pub fn priority_encoder(n: usize) -> Aig {
    assert!(n >= 2, "need at least two inputs");
    let index_bits = usize::BITS as usize - (n - 1).leading_zeros() as usize;
    let mut aig = Aig::new(n);
    let x: Word = (0..n).map(|i| aig.pi(i)).collect();
    let mut any_higher = Lit::FALSE;
    let mut index = vec![Lit::FALSE; index_bits];
    for k in (0..n).rev() {
        let sel = aig.and(x[k], !any_higher);
        for (b, idx) in index.iter_mut().enumerate() {
            if k >> b & 1 == 1 {
                *idx = aig.or(*idx, sel);
            }
        }
        any_higher = aig.or(any_higher, x[k]);
    }
    for l in index {
        aig.add_po(l);
    }
    aig.add_po(any_higher); // valid
    aig.set_name(format!("prienc_{n}"));
    aig
}

/// A small `n`-bit ALU with a 2-bit opcode:
/// `00 → a + b`, `01 → a − b`, `10 → a & b`, `11 → a < b` (zero-extended).
///
/// Inputs: `a` (n bits), `b` (n bits), `op` (2 bits); outputs: `n` bits.
///
/// ```
/// use boils_circuits::alu;
///
/// let aig = alu(4);
/// assert_eq!(aig.num_pis(), 10);
/// assert_eq!(aig.num_pos(), 4);
/// ```
pub fn alu(n: usize) -> Aig {
    assert!(n >= 2);
    let mut aig = Aig::new(2 * n + 2);
    let a: Word = (0..n).map(|i| aig.pi(i)).collect();
    let b: Word = (n..2 * n).map(|i| aig.pi(i)).collect();
    let op0 = aig.pi(2 * n);
    let op1 = aig.pi(2 * n + 1);
    let (sum, _) = add(&mut aig, &a, &b, Lit::FALSE);
    let (diff, _) = sub(&mut aig, &a, &b);
    let and_w: Word = a.iter().zip(&b).map(|(&x, &y)| aig.and(x, y)).collect();
    let lt = less_than(&mut aig, &a, &b);
    let mut lt_w = vec![Lit::FALSE; n];
    lt_w[0] = lt;
    // op1 selects between the arithmetic pair and the logic pair; op0
    // selects within each pair.
    let arith = mux_word(&mut aig, op0, &diff, &sum);
    let logic = mux_word(&mut aig, op0, &lt_w, &and_w);
    let out = mux_word(&mut aig, op1, &logic, &arith);
    for l in out {
        aig.add_po(l);
    }
    aig.set_name(format!("alu_{n}"));
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(aig: &Aig, bits: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = bits.iter().map(|&b| b as u64).collect();
        aig.simulate(&words).iter().map(|w| w & 1 == 1).collect()
    }

    #[test]
    fn priority_encoder_finds_highest_bit() {
        let n = 8;
        let aig = priority_encoder(n);
        for x in [0u32, 1, 0b1000_0000, 0b0101_0000, 0b0000_0110, 0xFF] {
            let bits: Vec<bool> = (0..n).map(|i| x >> i & 1 == 1).collect();
            let out = run(&aig, &bits);
            let valid = out[3];
            assert_eq!(valid, x != 0, "valid for {x:#b}");
            if x != 0 {
                let idx = out[0] as u32 | (out[1] as u32) << 1 | (out[2] as u32) << 2;
                assert_eq!(idx, 31 - x.leading_zeros(), "index for {x:#b}");
            }
        }
    }

    #[test]
    fn alu_implements_all_four_ops() {
        let n = 4;
        let aig = alu(n);
        for (a, b) in [(3u64, 5u64), (9, 9), (15, 1), (0, 7)] {
            for op in 0..4u64 {
                let mut bits: Vec<bool> = (0..n).map(|i| a >> i & 1 == 1).collect();
                bits.extend((0..n).map(|i| b >> i & 1 == 1));
                bits.push(op & 1 == 1);
                bits.push(op >> 1 & 1 == 1);
                let out = run(&aig, &bits);
                let val: u64 = out
                    .iter()
                    .enumerate()
                    .map(|(i, &bit)| (bit as u64) << i)
                    .sum();
                let mask = (1u64 << n) - 1;
                let expect = match op {
                    0 => (a + b) & mask,
                    1 => a.wrapping_sub(b) & mask,
                    2 => a & b,
                    _ => (a < b) as u64,
                };
                assert_eq!(val, expect, "a={a} b={b} op={op}");
            }
        }
    }

    #[test]
    fn extras_survive_the_synthesis_alphabet() {
        let circuits = [priority_encoder(6), alu(3)];
        for aig in circuits {
            let before = aig.simulate_exhaustive();
            // A couple of representative transforms; the full matrix is
            // covered by the synth crate's property tests.
            for seq in [[6usize, 0, 7], [4, 1, 8]] {
                let mut cur = aig.clone();
                for &t in &seq {
                    cur = boils_synth_transform(t).apply(&cur);
                }
                assert_eq!(cur.simulate_exhaustive(), before);
            }
        }
    }

    // The circuits crate must not depend on boils-synth (dependency
    // direction); this helper keeps the test self-contained by going
    // through the dev-dependency only.
    fn boils_synth_transform(index: usize) -> boils_synth::Transform {
        boils_synth::Transform::from_index(index)
    }
}
