//! Word-level construction helpers: little-endian bit vectors with ripple
//! arithmetic, comparisons, muxing, shifting and array multiplication.

use boils_aig::{Aig, Lit};

/// A little-endian word of literals (bit 0 first).
pub type Word = Vec<Lit>;

/// A constant word of the given width.
pub fn constant(value: u64, width: usize) -> Word {
    (0..width)
        .map(|i| {
            if i < 64 && value >> i & 1 == 1 {
                Lit::TRUE
            } else {
                Lit::FALSE
            }
        })
        .collect()
}

/// Zero-extends (or truncates) a word to `width` bits.
pub fn resize(w: &Word, width: usize) -> Word {
    let mut out = w.clone();
    out.resize(width, Lit::FALSE);
    out.truncate(width);
    out
}

/// Sign-extends (or truncates) a word to `width` bits.
pub fn sign_extend(w: &Word, width: usize) -> Word {
    let sign = *w.last().expect("non-empty word");
    let mut out = w.clone();
    out.resize(width, sign);
    out.truncate(width);
    out
}

/// One-bit full adder; returns `(sum, carry)`.
pub fn full_add(aig: &mut Aig, a: Lit, b: Lit, c: Lit) -> (Lit, Lit) {
    let ab = aig.xor(a, b);
    let sum = aig.xor(ab, c);
    let carry = aig.maj(a, b, c);
    (sum, carry)
}

/// Ripple-carry addition of equal-width words; returns `(sum, carry_out)`.
///
/// # Panics
///
/// Panics if the word widths differ.
pub fn add(aig: &mut Aig, a: &Word, b: &Word, carry_in: Lit) -> (Word, Lit) {
    assert_eq!(a.len(), b.len(), "addend width mismatch");
    let mut carry = carry_in;
    let mut sum = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let (s, c) = full_add(aig, x, y, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Two's-complement subtraction `a - b`; returns `(difference, borrow)`
/// where `borrow` is true iff `a < b` (unsigned).
pub fn sub(aig: &mut Aig, a: &Word, b: &Word) -> (Word, Lit) {
    let nb: Word = b.iter().map(|&l| !l).collect();
    let (diff, carry) = add(aig, a, &nb, Lit::TRUE);
    (diff, !carry)
}

/// Adds or subtracts under a control: `sel ? a - b : a + b`.
pub fn add_sub(aig: &mut Aig, a: &Word, b: &Word, subtract: Lit) -> Word {
    let eb: Word = b.iter().map(|&l| aig.xor(l, subtract)).collect();
    let (out, _) = add(aig, a, &eb, subtract);
    out
}

/// Unsigned `a < b`.
pub fn less_than(aig: &mut Aig, a: &Word, b: &Word) -> Lit {
    let (_, borrow) = sub(aig, a, b);
    borrow
}

/// Bitwise 2:1 word multiplexer `sel ? t : e`.
///
/// # Panics
///
/// Panics if the word widths differ.
pub fn mux_word(aig: &mut Aig, sel: Lit, t: &Word, e: &Word) -> Word {
    assert_eq!(t.len(), e.len(), "mux width mismatch");
    t.iter().zip(e).map(|(&x, &y)| aig.mux(sel, x, y)).collect()
}

/// Left-rotates a word by a fixed amount (wiring only).
pub fn rotate_left(w: &Word, k: usize) -> Word {
    let n = w.len();
    (0..n).map(|i| w[(i + n - k % n) % n]).collect()
}

/// Logical left shift by a fixed amount (wiring only).
pub fn shift_left(w: &Word, k: usize) -> Word {
    let n = w.len();
    (0..n)
        .map(|i| if i < k { Lit::FALSE } else { w[i - k] })
        .collect()
}

/// Arithmetic right shift by a fixed amount (wiring only).
pub fn shift_right_arith(w: &Word, k: usize) -> Word {
    let n = w.len();
    let sign = *w.last().expect("non-empty word");
    (0..n)
        .map(|i| if i + k < n { w[i + k] } else { sign })
        .collect()
}

/// Bitwise AND of a word with a single literal.
pub fn gate_word(aig: &mut Aig, w: &Word, enable: Lit) -> Word {
    w.iter().map(|&l| aig.and(l, enable)).collect()
}

/// Unsigned array multiplication; the product has `a.len() + b.len()` bits.
pub fn mul(aig: &mut Aig, a: &Word, b: &Word) -> Word {
    let out_width = a.len() + b.len();
    let mut acc = constant(0, out_width);
    for (i, &bi) in b.iter().enumerate() {
        let pp = gate_word(aig, a, bi);
        let shifted = resize(&shift_left(&resize(&pp, out_width), i), out_width);
        let (next, _) = add(aig, &acc, &shifted, Lit::FALSE);
        acc = next;
    }
    acc
}

/// Equality comparison of two equal-width words.
pub fn equal(aig: &mut Aig, a: &Word, b: &Word) -> Lit {
    assert_eq!(a.len(), b.len());
    let bits: Vec<Lit> = a.iter().zip(b).map(|(&x, &y)| aig.xnor(x, y)).collect();
    aig.and_many(&bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evaluates a word-level circuit on concrete inputs via simulation.
    fn eval(aig: &Aig, inputs: &[(usize, u64, usize)]) -> Vec<u64> {
        // inputs: (pi offset, value, width)
        let mut words = vec![0u64; aig.num_pis()];
        for &(offset, value, width) in inputs {
            for i in 0..width {
                words[offset + i] = (value >> i & 1) * !0u64;
            }
        }
        aig.simulate(&words).iter().map(|w| w & 1).collect()
    }

    fn word_out(bits: &[u64]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (b & 1) << i)
    }

    #[test]
    fn add_and_sub_match_integers() {
        let mut aig = Aig::new(16);
        let a: Word = (0..8).map(|i| aig.pi(i)).collect();
        let b: Word = (8..16).map(|i| aig.pi(i)).collect();
        let (sum, carry) = add(&mut aig, &a, &b, Lit::FALSE);
        let (diff, borrow) = sub(&mut aig, &a, &b);
        for l in sum {
            aig.add_po(l);
        }
        aig.add_po(carry);
        for l in diff {
            aig.add_po(l);
        }
        aig.add_po(borrow);
        for (x, y) in [(3u64, 5u64), (200, 57), (255, 255), (0, 0), (13, 200)] {
            let out = eval(&aig, &[(0, x, 8), (8, y, 8)]);
            let sum_val = word_out(&out[0..8]) | (out[8] & 1) << 8;
            assert_eq!(sum_val, x + y, "sum({x},{y})");
            let diff_val = word_out(&out[9..17]);
            assert_eq!(diff_val, x.wrapping_sub(y) & 0xFF, "diff({x},{y})");
            assert_eq!(out[17] & 1, (x < y) as u64, "borrow({x},{y})");
        }
    }

    #[test]
    fn mul_matches_integers() {
        let mut aig = Aig::new(12);
        let a: Word = (0..6).map(|i| aig.pi(i)).collect();
        let b: Word = (6..12).map(|i| aig.pi(i)).collect();
        let p = mul(&mut aig, &a, &b);
        for l in p {
            aig.add_po(l);
        }
        for (x, y) in [(0u64, 0u64), (1, 63), (63, 63), (21, 3), (42, 17)] {
            let out = eval(&aig, &[(0, x, 6), (6, y, 6)]);
            assert_eq!(word_out(&out), x * y, "mul({x},{y})");
        }
    }

    #[test]
    fn comparisons_and_mux() {
        let mut aig = Aig::new(9);
        let a: Word = (0..4).map(|i| aig.pi(i)).collect();
        let b: Word = (4..8).map(|i| aig.pi(i)).collect();
        let sel = aig.pi(8);
        let lt = less_than(&mut aig, &a, &b);
        let eq = equal(&mut aig, &a, &b);
        let m = mux_word(&mut aig, sel, &a, &b);
        aig.add_po(lt);
        aig.add_po(eq);
        for l in m {
            aig.add_po(l);
        }
        for (x, y, s) in [(3u64, 9u64, 1u64), (9, 3, 0), (7, 7, 1), (0, 15, 0)] {
            let out = eval(&aig, &[(0, x, 4), (4, y, 4), (8, s, 1)]);
            assert_eq!(out[0] & 1, (x < y) as u64);
            assert_eq!(out[1] & 1, (x == y) as u64);
            assert_eq!(word_out(&out[2..6]), if s == 1 { x } else { y });
        }
    }

    #[test]
    fn shifts_are_pure_wiring() {
        let mut aig = Aig::new(8);
        let w: Word = (0..8).map(|i| aig.pi(i)).collect();
        let before = aig.num_ands();
        let r = rotate_left(&w, 3);
        let s = shift_left(&w, 2);
        let a = shift_right_arith(&w, 2);
        assert_eq!(aig.num_ands(), before, "shifts must not add gates");
        for l in r.into_iter().chain(s).chain(a) {
            aig.add_po(l);
        }
        let out = eval(&aig, &[(0, 0b1011_0001, 8)]);
        assert_eq!(word_out(&out[0..8]), 0b1000_1101); // rotl 3
        assert_eq!(word_out(&out[8..16]), 0b1100_0100); // shl 2
        assert_eq!(word_out(&out[16..24]), 0b1110_1100); // sar 2 (sign = 1)
    }
}
