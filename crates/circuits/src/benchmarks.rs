//! Parametric generators for the ten EPFL arithmetic benchmark circuits.
//!
//! The EPFL suite itself is a set of fixed Verilog/AIGER files; since the
//! files are not redistributable here, each circuit is regenerated
//! structurally at a configurable bit width (see `DESIGN.md` for the
//! substitution rationale). Every generator has a bit-exact integer
//! [reference model](model) that the tests compare against via simulation.

use boils_aig::{Aig, Lit};

use crate::words::{
    add, add_sub, constant, less_than, mul, mux_word, resize, rotate_left, shift_left,
    shift_right_arith, sub, Word,
};

/// The ten EPFL arithmetic benchmarks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Benchmark {
    /// Ripple-carry adder (`adder`).
    Adder,
    /// Rotating barrel shifter (`bar`).
    BarrelShifter,
    /// Restoring array divider (`div`).
    Divisor,
    /// `⌊√(a² + b²)⌋` datapath (`hyp`).
    Hypotenuse,
    /// Fixed-point base-2 logarithm by digit recurrence (`log2`).
    Log2,
    /// Four-way word maximum (`max`).
    Max,
    /// Unsigned array multiplier (`multiplier`).
    Multiplier,
    /// CORDIC sine (`sin`).
    Sine,
    /// Restoring square root (`sqrt`).
    SquareRoot,
    /// Array squarer (`square`).
    Square,
}

impl Benchmark {
    /// All ten benchmarks in the paper's table order.
    pub const ALL: [Benchmark; 10] = [
        Benchmark::Adder,
        Benchmark::BarrelShifter,
        Benchmark::Divisor,
        Benchmark::Hypotenuse,
        Benchmark::Log2,
        Benchmark::Max,
        Benchmark::Multiplier,
        Benchmark::Sine,
        Benchmark::SquareRoot,
        Benchmark::Square,
    ];

    /// The circuit's conventional short name (EPFL file stem).
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Adder => "adder",
            Benchmark::BarrelShifter => "bar",
            Benchmark::Divisor => "div",
            Benchmark::Hypotenuse => "hyp",
            Benchmark::Log2 => "log2",
            Benchmark::Max => "max",
            Benchmark::Multiplier => "multiplier",
            Benchmark::Sine => "sin",
            Benchmark::SquareRoot => "sqrt",
            Benchmark::Square => "square",
        }
    }

    /// Default operand width used by the experiment harness — scaled down
    /// from the EPFL originals so full sweeps run on one machine.
    pub fn default_bits(self) -> usize {
        match self {
            Benchmark::Adder => 32,
            Benchmark::BarrelShifter => 16,
            Benchmark::Divisor => 8,
            Benchmark::Hypotenuse => 6,
            Benchmark::Log2 => 8,
            Benchmark::Max => 16,
            Benchmark::Multiplier => 8,
            Benchmark::Sine => 8,
            Benchmark::SquareRoot => 16,
            Benchmark::Square => 8,
        }
    }

    /// Resolves a short name (as printed by [`Benchmark::name`]), listing
    /// the valid names in the diagnostic — the shared validation used by
    /// both the experiment CLI and the daemon's job decoder.
    ///
    /// # Errors
    ///
    /// Returns a one-line message for unknown names.
    pub fn parse(name: &str) -> Result<Benchmark, String> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name() == name)
            .ok_or_else(|| {
                let known: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
                format!(
                    "unknown circuit {name:?} (expected one of: {})",
                    known.join(", ")
                )
            })
    }

    /// Operand width of the original EPFL benchmark, for reference.
    pub fn paper_bits(self) -> usize {
        match self {
            Benchmark::Adder => 128,
            Benchmark::BarrelShifter => 128,
            Benchmark::Divisor => 64,
            Benchmark::Hypotenuse => 128,
            Benchmark::Log2 => 32,
            Benchmark::Max => 128,
            Benchmark::Multiplier => 64,
            Benchmark::Sine => 24,
            Benchmark::SquareRoot => 128,
            Benchmark::Square => 64,
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A benchmark plus its generation parameters.
///
/// ```
/// use boils_circuits::{Benchmark, CircuitSpec};
///
/// let aig = CircuitSpec::new(Benchmark::Adder).bits(8).build();
/// assert_eq!(aig.num_pis(), 16);
/// assert_eq!(aig.num_pos(), 9);
/// aig.check().unwrap();
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CircuitSpec {
    benchmark: Benchmark,
    bits: usize,
}

impl CircuitSpec {
    /// A spec at the benchmark's default (scaled-down) width.
    pub fn new(benchmark: Benchmark) -> CircuitSpec {
        CircuitSpec {
            benchmark,
            bits: benchmark.default_bits(),
        }
    }

    /// Overrides the operand width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is out of the benchmark's supported range
    /// (≥ 2 everywhere; powers of two for the barrel shifter; even widths
    /// for the square root; ≥ 4 for sine and log2; ≤ 64 overall because the
    /// reference models use `u128` intermediates).
    pub fn bits(mut self, bits: usize) -> CircuitSpec {
        validate_bits(self.benchmark, bits);
        self.bits = bits;
        self
    }

    /// The benchmark identity.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// The configured operand width.
    pub fn num_bits(&self) -> usize {
        self.bits
    }

    /// Generates the circuit as an AIG.
    pub fn build(&self) -> Aig {
        let n = self.bits;
        let mut aig = match self.benchmark {
            Benchmark::Adder => gen_adder(n),
            Benchmark::BarrelShifter => gen_barrel(n),
            Benchmark::Divisor => gen_div(n),
            Benchmark::Hypotenuse => gen_hyp(n),
            Benchmark::Log2 => gen_log2(n),
            Benchmark::Max => gen_max(n),
            Benchmark::Multiplier => gen_mul(n),
            Benchmark::Sine => gen_sin(n),
            Benchmark::SquareRoot => gen_sqrt(n),
            Benchmark::Square => gen_square(n),
        };
        aig.set_name(format!("{}_{}", self.benchmark.name(), n));
        aig
    }
}

fn validate_bits(benchmark: Benchmark, bits: usize) {
    assert!(bits >= 2, "need at least 2 bits");
    assert!(bits <= 64, "reference models support at most 64 bits");
    match benchmark {
        Benchmark::BarrelShifter => {
            assert!(bits.is_power_of_two(), "barrel shifter width must be 2^k")
        }
        Benchmark::SquareRoot => assert!(bits.is_multiple_of(2), "sqrt width must be even"),
        Benchmark::Sine | Benchmark::Log2 => assert!(bits >= 4, "width too small"),
        _ => {}
    }
}

fn pi_word(aig: &mut Aig, start: usize, width: usize) -> Word {
    (start..start + width).map(|i| aig.pi(i)).collect()
}

fn add_word_outputs(aig: &mut Aig, w: &Word) {
    for &l in w {
        aig.add_po(l);
    }
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn gen_adder(n: usize) -> Aig {
    let mut aig = Aig::new(2 * n);
    let a = pi_word(&mut aig, 0, n);
    let b = pi_word(&mut aig, n, n);
    let (sum, carry) = add(&mut aig, &a, &b, Lit::FALSE);
    add_word_outputs(&mut aig, &sum);
    aig.add_po(carry);
    aig
}

fn gen_barrel(n: usize) -> Aig {
    let stages = n.trailing_zeros() as usize;
    let mut aig = Aig::new(n + stages);
    let mut data = pi_word(&mut aig, 0, n);
    let shift = pi_word(&mut aig, n, stages);
    for (k, &s) in shift.iter().enumerate() {
        let rotated = rotate_left(&data, 1 << k);
        data = mux_word(&mut aig, s, &rotated, &data);
    }
    add_word_outputs(&mut aig, &data);
    aig
}

fn gen_div(n: usize) -> Aig {
    let mut aig = Aig::new(2 * n);
    let dividend = pi_word(&mut aig, 0, n);
    let divisor = pi_word(&mut aig, n, n);
    let w = n + 1;
    let divisor_w = resize(&divisor, w);
    let mut rem = constant(0, w);
    let mut quotient = vec![Lit::FALSE; n];
    for i in (0..n).rev() {
        // rem = (rem << 1) | dividend[i]
        let mut shifted = shift_left(&rem, 1);
        shifted[0] = dividend[i];
        let (diff, borrow) = sub(&mut aig, &shifted, &divisor_w);
        quotient[i] = !borrow;
        rem = mux_word(&mut aig, borrow, &shifted, &diff);
    }
    add_word_outputs(&mut aig, &quotient);
    add_word_outputs(&mut aig, &resize(&rem, n));
    aig
}

/// Restoring square root over a `2m`-bit radicand; root has `m` bits.
fn sqrt_datapath(aig: &mut Aig, x: &Word) -> Word {
    let m = x.len() / 2;
    let w = m + 4;
    let mut rem = constant(0, w);
    let mut root = constant(0, w);
    let mut root_bits = vec![Lit::FALSE; m];
    for i in (0..m).rev() {
        // rem = (rem << 2) | x[2i+1 .. 2i]
        let mut shifted = shift_left(&rem, 2);
        shifted[0] = x[2 * i];
        shifted[1] = x[2 * i + 1];
        // trial = (root << 2) | 1
        let mut trial = shift_left(&root, 2);
        trial[0] = Lit::TRUE;
        let (diff, borrow) = sub(aig, &shifted, &trial);
        let bit = !borrow;
        root_bits[i] = bit;
        rem = mux_word(aig, borrow, &shifted, &diff);
        // root = (root << 1) | bit
        let mut r2 = shift_left(&root, 1);
        r2[0] = bit;
        root = r2;
    }
    root_bits
}

fn gen_sqrt(n: usize) -> Aig {
    let mut aig = Aig::new(n);
    let x = pi_word(&mut aig, 0, n);
    let root = sqrt_datapath(&mut aig, &x);
    add_word_outputs(&mut aig, &root);
    aig
}

fn gen_hyp(n: usize) -> Aig {
    let mut aig = Aig::new(2 * n);
    let a = pi_word(&mut aig, 0, n);
    let b = pi_word(&mut aig, n, n);
    let a2 = mul(&mut aig, &a, &a);
    let b2 = mul(&mut aig, &b, &b);
    let width = 2 * n + 2; // even width for the sqrt datapath
    let a2w = resize(&a2, width);
    let b2w = resize(&b2, width);
    let (sum, _) = add(&mut aig, &a2w, &b2w, Lit::FALSE);
    let root = sqrt_datapath(&mut aig, &sum);
    add_word_outputs(&mut aig, &root);
    aig
}

fn gen_mul(n: usize) -> Aig {
    let mut aig = Aig::new(2 * n);
    let a = pi_word(&mut aig, 0, n);
    let b = pi_word(&mut aig, n, n);
    let p = mul(&mut aig, &a, &b);
    add_word_outputs(&mut aig, &p);
    aig
}

fn gen_square(n: usize) -> Aig {
    let mut aig = Aig::new(n);
    let a = pi_word(&mut aig, 0, n);
    let p = mul(&mut aig, &a, &a);
    add_word_outputs(&mut aig, &p);
    aig
}

fn gen_max(n: usize) -> Aig {
    let mut aig = Aig::new(4 * n);
    let words: Vec<Word> = (0..4).map(|k| pi_word(&mut aig, k * n, n)).collect();
    // Pairwise maxima with index tracking.
    let lt01 = less_than(&mut aig, &words[0], &words[1]);
    let m01 = mux_word(&mut aig, lt01, &words[1], &words[0]);
    let lt23 = less_than(&mut aig, &words[2], &words[3]);
    let m23 = mux_word(&mut aig, lt23, &words[3], &words[2]);
    let lt = less_than(&mut aig, &m01, &m23);
    let m = mux_word(&mut aig, lt, &m23, &m01);
    add_word_outputs(&mut aig, &m);
    // Two-bit argmax index, as in the EPFL circuit's wider output.
    let low_index = aig.mux(lt, lt23, lt01);
    aig.add_po(low_index);
    aig.add_po(lt);
    aig
}

/// Number of integer bits of the log2 output for an `n`-bit input.
pub fn log2_int_bits(n: usize) -> usize {
    usize::BITS as usize - (n - 1).leading_zeros() as usize
}

/// Number of fraction bits of the log2 output for an `n`-bit input.
pub fn log2_frac_bits(n: usize) -> usize {
    (n / 3).max(2)
}

fn gen_log2(n: usize) -> Aig {
    let int_bits = log2_int_bits(n);
    let frac_bits = log2_frac_bits(n);
    let mut aig = Aig::new(n);
    let x = pi_word(&mut aig, 0, n);
    // Leading-one detection: sel[k] = x[k] & !(x[k+1] | … | x[n-1]).
    let mut any_higher = Lit::FALSE;
    let mut sel = vec![Lit::FALSE; n];
    for k in (0..n).rev() {
        sel[k] = aig.and(x[k], !any_higher);
        any_higher = aig.or(any_higher, x[k]);
    }
    // Integer part: OR of gated position constants.
    let mut int_part = constant(0, int_bits);
    for (k, &s) in sel.iter().enumerate() {
        for (b, ip) in int_part.iter_mut().enumerate() {
            if k >> b & 1 == 1 {
                *ip = aig.or(*ip, s);
            }
        }
    }
    // Normalised mantissa: m = x << (n-1-k) for the detected k.
    let mut mantissa = constant(0, n);
    for (k, &s) in sel.iter().enumerate() {
        let shifted = shift_left(&x, n - 1 - k);
        for (b, m) in mantissa.iter_mut().enumerate() {
            let gated = aig.and(shifted[b], s);
            *m = aig.or(*m, gated);
        }
    }
    // Digit recurrence: square the mantissa; an overflow past 2 emits a 1.
    let mut frac = Vec::with_capacity(frac_bits);
    let mut m = mantissa;
    for _ in 0..frac_bits {
        let sq = mul(&mut aig, &m, &m); // 2n bits, value m² with 2(n-1) frac bits
                                        // Renormalise to n+1 bits with n-1 fraction bits.
        let top: Word = sq[(n - 1)..(2 * n)].to_vec();
        let bit = top[n]; // ≥ 2.0
        frac.push(bit);
        let halved: Word = top[1..=n].to_vec();
        let kept: Word = top[0..n].to_vec();
        m = mux_word(&mut aig, bit, &halved, &kept);
    }
    add_word_outputs(&mut aig, &int_part);
    // Fraction bits most-significant first in the recurrence; emit in
    // little-endian output order (LSB = last computed digit).
    for &b in frac.iter().rev() {
        aig.add_po(b);
    }
    aig
}

/// CORDIC constants in `Qs.(n-2)` fixed point.
fn cordic_constants(n: usize) -> (i64, Vec<i64>) {
    let frac = (n - 2) as i32;
    let scale = f64::powi(2.0, frac);
    let k = (0.607_252_935_008_881_3 * scale).round() as i64;
    let atans: Vec<i64> = (0..n)
        .map(|i| ((f64::powi(2.0, -(i as i32))).atan() * scale).round() as i64)
        .collect();
    (k, atans)
}

fn gen_sin(n: usize) -> Aig {
    let (k, atans) = cordic_constants(n);
    let mut aig = Aig::new(n);
    let mut z = pi_word(&mut aig, 0, n);
    let mut x = constant(k as u64, n);
    let mut y = constant(0, n);
    for (i, &atan) in atans.iter().enumerate() {
        let neg = *z.last().expect("non-empty word"); // z < 0
        let dx = shift_right_arith(&x, i);
        let dy = shift_right_arith(&y, i);
        let dz = constant(atan as u64, n);
        // z ≥ 0 (neg=0): x -= dy, y += dx, z -= atan; else the opposite.
        let x2 = add_sub(&mut aig, &x, &dy, !neg);
        let y2 = add_sub(&mut aig, &y, &dx, neg);
        let z2 = add_sub(&mut aig, &z, &dz, !neg);
        x = x2;
        y = y2;
        z = z2;
    }
    add_word_outputs(&mut aig, &y);
    aig
}

// ---------------------------------------------------------------------------
// Reference models (bit-exact integer mirrors of the generators)
// ---------------------------------------------------------------------------

/// Bit-exact integer models of every generator, used by tests and examples
/// to validate the circuits via simulation.
pub mod model {
    use super::{cordic_constants, log2_frac_bits, log2_int_bits};

    fn mask(bits: usize) -> u128 {
        if bits >= 128 {
            u128::MAX
        } else {
            (1u128 << bits) - 1
        }
    }

    /// `a + b` with full carry (n+1 bits).
    pub fn adder(a: u128, b: u128, _n: usize) -> u128 {
        a + b
    }

    /// Left-rotation of an `n`-bit word.
    pub fn barrel(x: u128, shift: u32, n: usize) -> u128 {
        let s = shift as usize % n;
        ((x << s) | (x >> (n - s).min(127))) & mask(n) | if s == 0 { x & mask(n) } else { 0 }
    }

    /// Restoring division; returns `(quotient, remainder)`. Mirrors the
    /// circuit exactly, including the divide-by-zero behaviour (all-ones
    /// quotient).
    pub fn div(dividend: u128, divisor: u128, n: usize) -> (u128, u128) {
        let w = n + 1;
        let mut rem: u128 = 0;
        let mut q: u128 = 0;
        for i in (0..n).rev() {
            rem = ((rem << 1) | (dividend >> i & 1)) & mask(w);
            if rem >= divisor {
                rem = (rem - divisor) & mask(w);
                q |= 1 << i;
            }
        }
        (q, rem & mask(n))
    }

    /// Restoring square root over a `2m`-bit radicand (circuit-exact).
    pub fn sqrt(x: u128, n: usize) -> u128 {
        let m = n / 2;
        let w = m + 4;
        let mut rem: u128 = 0;
        let mut root: u128 = 0;
        let mut bits: u128 = 0;
        for i in (0..m).rev() {
            rem = ((rem << 2) | (x >> (2 * i) & 3)) & mask(w);
            let trial = ((root << 2) | 1) & mask(w);
            if rem >= trial {
                rem = (rem - trial) & mask(w);
                bits |= 1 << i;
                root = ((root << 1) | 1) & mask(w);
            } else {
                root = (root << 1) & mask(w);
            }
        }
        bits
    }

    /// `⌊√(a² + b²)⌋` (circuit-exact digit recurrence).
    pub fn hyp(a: u128, b: u128, n: usize) -> u128 {
        sqrt(a * a + b * b, 2 * n + 2)
    }

    /// Four-way maximum plus the 2-bit argmax index, packed as
    /// `(max, index)`.
    pub fn max4(ws: [u128; 4]) -> (u128, u32) {
        let lt01 = ws[0] < ws[1];
        let m01 = if lt01 { ws[1] } else { ws[0] };
        let lt23 = ws[2] < ws[3];
        let m23 = if lt23 { ws[3] } else { ws[2] };
        let lt = m01 < m23;
        let m = if lt { m23 } else { m01 };
        let low = if lt { lt23 } else { lt01 };
        (m, (low as u32) | (lt as u32) << 1)
    }

    /// `a * b`.
    pub fn multiplier(a: u128, b: u128) -> u128 {
        a * b
    }

    /// Fixed-point log2: returns `(int_part, frac_bits_le)` exactly as the
    /// circuit computes them.
    pub fn log2(x: u128, n: usize) -> (u128, u128) {
        let int_bits = log2_int_bits(n);
        let frac_bits = log2_frac_bits(n);
        let _ = int_bits;
        if x == 0 {
            // LOD finds nothing: integer part 0, zero mantissa.
            return (0, 0);
        }
        let k = 127 - x.leading_zeros() as usize;
        let int_part = k as u128;
        let mut m = (x << (n - 1 - k)) & mask(n);
        let mut frac: u128 = 0;
        for j in 0..frac_bits {
            let sq = m * m;
            let top = (sq >> (n - 1)) & mask(n + 1);
            let bit = top >> n & 1;
            // Fraction digit j is emitted MSB-first; output is little-endian.
            if bit == 1 {
                frac |= 1 << (frac_bits - 1 - j);
                m = (top >> 1) & mask(n);
            } else {
                m = top & mask(n);
            }
        }
        (int_part, frac)
    }

    /// CORDIC sine in `Q2.(n-2)` fixed point (circuit-exact).
    pub fn sine(angle: u128, n: usize) -> u128 {
        let (k, atans) = cordic_constants(n);
        let m = mask(n);
        let sign_bit = 1u128 << (n - 1);
        let sar = |v: u128, s: usize| -> u128 {
            // Arithmetic right shift within n bits: the top s bits take the
            // sign value.
            let mut out = v >> s.min(127);
            if v & sign_bit != 0 {
                out |= m & !(m >> s.min(127));
            }
            out & m
        };
        let add_n = |a: u128, b: u128| (a + b) & m;
        let sub_n = |a: u128, b: u128| (a.wrapping_sub(b)) & m;
        let mut x = (k as u128) & m;
        let mut y: u128 = 0;
        let mut z = angle & m;
        for (i, &atan) in atans.iter().enumerate() {
            let neg = z & sign_bit != 0;
            let dx = sar(x, i);
            let dy = sar(y, i);
            let dz = (atan as u128) & m;
            if neg {
                x = add_n(x, dy);
                y = sub_n(y, dx);
                z = add_n(z, dz);
            } else {
                x = sub_n(x, dy);
                y = add_n(y, dx);
                z = sub_n(z, dz);
            }
        }
        y
    }

    /// `a²`.
    pub fn square(a: u128) -> u128 {
        a * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Simulates a circuit on a single concrete input assignment.
    fn run(aig: &Aig, input_bits: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = input_bits.iter().map(|&b| b as u64).collect();
        aig.simulate(&words).iter().map(|w| w & 1 == 1).collect()
    }

    fn to_bits(value: u128, width: usize) -> Vec<bool> {
        (0..width).map(|i| value >> i & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u128 {
        bits.iter()
            .enumerate()
            .fold(0u128, |acc, (i, &b)| acc | (b as u128) << i)
    }

    fn rand_val(rng: &mut StdRng, bits: usize) -> u128 {
        let v: u128 = ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128;
        v & ((1u128 << bits) - 1)
    }

    #[test]
    fn adder_matches_model() {
        let n = 10;
        let aig = CircuitSpec::new(Benchmark::Adder).bits(n).build();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..30 {
            let (a, b) = (rand_val(&mut rng, n), rand_val(&mut rng, n));
            let mut input = to_bits(a, n);
            input.extend(to_bits(b, n));
            let out = from_bits(&run(&aig, &input));
            assert_eq!(out, model::adder(a, b, n), "{a}+{b}");
        }
    }

    #[test]
    fn barrel_matches_model() {
        let n = 16;
        let aig = CircuitSpec::new(Benchmark::BarrelShifter).bits(n).build();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let x = rand_val(&mut rng, n);
            let s = rng.gen_range(0..n as u32);
            let mut input = to_bits(x, n);
            input.extend(to_bits(s as u128, 4));
            let out = from_bits(&run(&aig, &input));
            assert_eq!(out, model::barrel(x, s, n), "rot({x:#x},{s})");
        }
    }

    #[test]
    fn divisor_matches_model() {
        let n = 8;
        let aig = CircuitSpec::new(Benchmark::Divisor).bits(n).build();
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..40 {
            let a = rand_val(&mut rng, n);
            let b = if trial == 0 { 0 } else { rand_val(&mut rng, n) };
            let mut input = to_bits(a, n);
            input.extend(to_bits(b, n));
            let out = run(&aig, &input);
            let q = from_bits(&out[0..n]);
            let r = from_bits(&out[n..2 * n]);
            let (mq, mr) = model::div(a, b, n);
            assert_eq!((q, r), (mq, mr), "div({a},{b})");
            if let (Some(tq), Some(tr)) = (a.checked_div(b), a.checked_rem(b)) {
                assert_eq!((q, r), (tq, tr), "true quotient/remainder");
            }
        }
    }

    #[test]
    fn sqrt_matches_model_and_math() {
        let n = 16;
        let aig = CircuitSpec::new(Benchmark::SquareRoot).bits(n).build();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..40 {
            let x = rand_val(&mut rng, n);
            let out = from_bits(&run(&aig, &to_bits(x, n)));
            assert_eq!(out, model::sqrt(x, n), "sqrt({x})");
            assert_eq!(out, (x as f64).sqrt().floor() as u128, "⌊√{x}⌋");
        }
    }

    #[test]
    fn hypotenuse_matches_model_and_math() {
        let n = 6;
        let aig = CircuitSpec::new(Benchmark::Hypotenuse).bits(n).build();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let (a, b) = (rand_val(&mut rng, n), rand_val(&mut rng, n));
            let mut input = to_bits(a, n);
            input.extend(to_bits(b, n));
            let out = from_bits(&run(&aig, &input));
            assert_eq!(out, model::hyp(a, b, n), "hyp({a},{b})");
            let true_val = ((a * a + b * b) as f64).sqrt().floor() as u128;
            assert_eq!(out, true_val, "⌊√({a}²+{b}²)⌋");
        }
    }

    #[test]
    fn max_matches_model() {
        let n = 8;
        let aig = CircuitSpec::new(Benchmark::Max).bits(n).build();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..30 {
            let ws = [
                rand_val(&mut rng, n),
                rand_val(&mut rng, n),
                rand_val(&mut rng, n),
                rand_val(&mut rng, n),
            ];
            let mut input = Vec::new();
            for w in ws {
                input.extend(to_bits(w, n));
            }
            let out = run(&aig, &input);
            let m = from_bits(&out[0..n]);
            let idx = from_bits(&out[n..n + 2]) as u32;
            let (mm, mi) = model::max4(ws);
            assert_eq!((m, idx), (mm, mi), "max{ws:?}");
            assert_eq!(m, *ws.iter().max().expect("four values"));
        }
    }

    #[test]
    fn multiplier_and_square_match_model() {
        let n = 7;
        let mul_aig = CircuitSpec::new(Benchmark::Multiplier).bits(n).build();
        let sq_aig = CircuitSpec::new(Benchmark::Square).bits(n).build();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..30 {
            let (a, b) = (rand_val(&mut rng, n), rand_val(&mut rng, n));
            let mut input = to_bits(a, n);
            input.extend(to_bits(b, n));
            assert_eq!(from_bits(&run(&mul_aig, &input)), a * b, "{a}*{b}");
            assert_eq!(from_bits(&run(&sq_aig, &to_bits(a, n))), a * a, "{a}²");
        }
    }

    #[test]
    fn log2_matches_model_and_math() {
        let n = 8;
        let aig = CircuitSpec::new(Benchmark::Log2).bits(n).build();
        let ib = log2_int_bits(n);
        let fb = log2_frac_bits(n);
        let mut rng = StdRng::seed_from_u64(8);
        for trial in 0..40 {
            let x = if trial == 0 {
                1
            } else {
                rand_val(&mut rng, n).max(1)
            };
            let out = run(&aig, &to_bits(x, n));
            let int_part = from_bits(&out[0..ib]);
            let frac = from_bits(&out[ib..ib + fb]);
            let (mi, mf) = model::log2(x, n);
            assert_eq!((int_part, frac), (mi, mf), "log2({x})");
            assert_eq!(int_part, (127 - x.leading_zeros()) as u128, "⌊log2({x})⌋");
        }
    }

    #[test]
    fn log2_fraction_approximates_real_log() {
        let n = 8;
        let fb = log2_frac_bits(n);
        for x in [3u128, 5, 100, 200, 255] {
            let (i, f) = model::log2(x, n);
            let approx = i as f64 + f as f64 / f64::powi(2.0, fb as i32);
            let real = (x as f64).log2();
            assert!((approx - real).abs() < 0.3, "log2({x}): {approx} vs {real}");
        }
    }

    #[test]
    fn sine_matches_model() {
        let n = 8;
        let aig = CircuitSpec::new(Benchmark::Sine).bits(n).build();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..40 {
            let angle = rand_val(&mut rng, n);
            let out = from_bits(&run(&aig, &to_bits(angle, n)));
            assert_eq!(out, model::sine(angle, n), "sin({angle:#x})");
        }
    }

    #[test]
    fn sine_approximates_real_sine() {
        let n = 12;
        let frac = (n - 2) as i32;
        let scale = f64::powi(2.0, frac);
        for deg in [-45i32, -20, 0, 10, 30, 60, 80] {
            let rad = f64::from(deg).to_radians();
            let fixed = ((rad * scale).round() as i64) as u128 & ((1 << n) - 1);
            let y = model::sine(fixed, n);
            // Interpret as signed.
            let signed = if y >> (n - 1) & 1 == 1 {
                y as i64 - (1i64 << n)
            } else {
                y as i64
            };
            let approx = signed as f64 / scale;
            assert!(
                (approx - rad.sin()).abs() < 0.05,
                "sin({deg}°): {approx} vs {}",
                rad.sin()
            );
        }
    }

    #[test]
    fn all_benchmarks_build_and_validate() {
        for b in Benchmark::ALL {
            let aig = CircuitSpec::new(b).build();
            aig.check().expect("valid AIG");
            assert!(aig.num_ands() > 0, "{b} is not trivial");
            assert!(aig.num_pos() > 0);
        }
    }

    #[test]
    fn default_sizes_are_benchmark_scale() {
        // The harness relies on circuits being non-trivial but tractable.
        for b in Benchmark::ALL {
            let aig = CircuitSpec::new(b).build();
            let ands = aig.num_ands();
            assert!(
                (50..20_000).contains(&ands),
                "{b}: {ands} gates out of expected range"
            );
        }
    }
}
