//! Literals: a node index paired with an optional logical negation.
//!
//! The encoding follows the AIGER convention: a literal is `2 * var + c`
//! where `var` is the node index and `c` is 1 when the edge is complemented.
//! Node 0 is the constant-false node, so [`Lit::FALSE`] is `0` and
//! [`Lit::TRUE`] is `1`.

use std::fmt;
use std::ops::Not;

/// An edge into an AIG node, optionally complemented.
///
/// ```
/// use boils_aig::Lit;
///
/// let a = Lit::from_var(3, false);
/// assert_eq!(a.var(), 3);
/// assert!(!a.is_complement());
/// assert_eq!((!a).var(), 3);
/// assert!((!a).is_complement());
/// assert_eq!(!!a, a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The constant-false literal (node 0, not complemented).
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal (node 0, complemented).
    pub const TRUE: Lit = Lit(1);

    /// Creates a literal from a node index and complement flag.
    ///
    /// # Panics
    ///
    /// Panics if `var` exceeds `u32::MAX / 2` (the largest encodable index).
    #[inline]
    pub fn from_var(var: usize, complement: bool) -> Lit {
        assert!(var <= (u32::MAX / 2) as usize, "node index out of range");
        Lit((var as u32) << 1 | complement as u32)
    }

    /// Creates a literal from its raw AIGER encoding `2 * var + c`.
    #[inline]
    pub fn from_raw(raw: u32) -> Lit {
        Lit(raw)
    }

    /// The raw AIGER encoding `2 * var + c`.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The node index this literal points at.
    #[inline]
    pub fn var(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the edge is complemented.
    #[inline]
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns this literal with the given complement flag applied on top.
    ///
    /// `lit.xor_complement(true)` is `!lit`; with `false` it is a no-op.
    #[inline]
    pub fn xor_complement(self, complement: bool) -> Lit {
        Lit(self.0 ^ complement as u32)
    }

    /// Returns the non-complemented literal for the same node.
    #[inline]
    pub fn regular(self) -> Lit {
        Lit(self.0 & !1)
    }

    /// Whether this literal is one of the two constants.
    #[inline]
    pub fn is_const(self) -> bool {
        self.var() == 0
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complement() {
            write!(f, "!n{}", self.var())
        } else {
            write!(f, "n{}", self.var())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_round_trip() {
        assert_eq!(Lit::FALSE.var(), 0);
        assert!(!Lit::FALSE.is_complement());
        assert_eq!(Lit::TRUE, !Lit::FALSE);
        assert!(Lit::TRUE.is_const());
    }

    #[test]
    fn raw_encoding_matches_aiger() {
        let l = Lit::from_var(21, true);
        assert_eq!(l.raw(), 43);
        assert_eq!(Lit::from_raw(43), l);
    }

    #[test]
    fn complement_involution() {
        let l = Lit::from_var(5, false);
        assert_eq!(!!l, l);
        assert_eq!(l.xor_complement(true), !l);
        assert_eq!(l.xor_complement(false), l);
        assert_eq!((!l).regular(), l);
    }

    #[test]
    fn ordering_groups_by_var() {
        assert!(Lit::from_var(2, true) < Lit::from_var(3, false));
        assert!(Lit::from_var(2, false) < Lit::from_var(2, true));
    }
}
