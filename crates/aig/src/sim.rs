//! The bit-parallel simulation tier: a flat, single-allocation signature
//! table over every node of an [`Aig`].
//!
//! One `u64` word packs 64 independent test vectors, so simulating a node
//! on a word costs two XORs and an AND — the trick behind fraig candidate
//! collection since the original FRAIG work. [`SimTable`] arranges the
//! signatures of all nodes in **one** allocation (`stride` words per node,
//! amortised-doubling capacity), instead of the one-`Vec`-per-node layout
//! of the legacy [`Aig::simulate_nodes`] (now a thin wrapper over this
//! type). Two properties make it the substrate for SAT sweeping and cheap
//! equivalence refutation:
//!
//! * **Append-only incremental re-simulation.** Refinement loops keep
//!   feeding counterexamples back as new patterns. Appending simulates
//!   *only the new word columns* — O(nodes × new_words) per round instead
//!   of O(nodes × total_words) — and [`SimTable::append_counterexamples`]
//!   packs single-bit counterexamples into the last partially-used word
//!   before allocating fresh ones, so a 1-counterexample round no longer
//!   burns a full 64-pattern word across every input.
//! * **Hashed canonical signatures.** [`SimTable::sig_hash`] reduces a
//!   node's signature, canonicalised up to complement, to a 64-bit key
//!   plus a phase bit, so candidate equivalence classes partition through
//!   an integer hash map instead of cloned `Vec<u64>` keys. Collisions are
//!   resolved exactly with [`SimTable::rows_equal`], which compares rows
//!   in place.
//!
//! Unused bits of a partially-filled last word are kept zero on the input
//! rows, so the padding columns simulate the all-zeroes input pattern —
//! a real (if redundant) pattern, which keeps signatures of different
//! nodes comparable word-by-word without masking.

use crate::{Aig, Lit};

/// A flat bit-parallel signature table: `stride` (capacity) words per
/// node, one allocation for the whole AIG.
///
/// ```
/// use boils_aig::{Aig, SimTable};
///
/// let mut aig = Aig::new(2);
/// let (a, b) = (aig.pi(0), aig.pi(1));
/// let ab = aig.and(a, b);
/// aig.add_po(ab);
///
/// // One word per input: 64 patterns in a single allocation.
/// let table = SimTable::from_patterns(&aig, &[vec![0b1100], vec![0b1010]], 1);
/// assert_eq!(table.row(ab.var()), &[0b1000]);
/// assert_eq!(table.num_bits(), 64);
/// ```
#[derive(Clone, Debug)]
pub struct SimTable {
    /// `num_nodes × cap` words; node `v`'s row is `words[v*cap .. v*cap+used]`.
    words: Vec<u64>,
    num_nodes: usize,
    /// Allocated words per node (the row stride).
    cap: usize,
    /// Valid patterns; `bits.div_ceil(64)` words of every row are in use.
    bits: usize,
}

impl SimTable {
    /// Simulates every node of `aig` on `words` pattern words per input
    /// (`pi_words[i]` drives input `i`), in one allocation.
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len() != aig.num_pis()` or any row's length
    /// differs from `words`.
    pub fn from_patterns(aig: &Aig, pi_words: &[Vec<u64>], words: usize) -> SimTable {
        assert_eq!(
            pi_words.len(),
            aig.num_pis(),
            "one pattern row per input required"
        );
        let num_nodes = aig.num_nodes();
        let cap = words.max(1);
        let mut table = SimTable {
            words: vec![0u64; num_nodes * cap],
            num_nodes,
            cap,
            bits: words * 64,
        };
        for (i, row) in pi_words.iter().enumerate() {
            assert_eq!(row.len(), words, "ragged simulation input");
            let base = (1 + i) * cap;
            table.words[base..base + words].copy_from_slice(row);
        }
        table.simulate_columns(aig, 0, words);
        table
    }

    /// The number of nodes (rows) in the table.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The number of valid patterns (bits per row).
    #[inline]
    pub fn num_bits(&self) -> usize {
        self.bits
    }

    /// Words per row currently in use (`num_bits` rounded up to words).
    #[inline]
    pub fn num_words(&self) -> usize {
        self.bits.div_ceil(64)
    }

    /// Node `node`'s signature: its value under every pattern, one bit
    /// per pattern, trailing bits of the last word simulating the
    /// all-zeroes input.
    #[inline]
    pub fn row(&self, node: usize) -> &[u64] {
        let base = node * self.cap;
        &self.words[base..base + self.num_words()]
    }

    /// Node `node`'s value under pattern `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= num_bits()`.
    #[inline]
    pub fn value(&self, node: usize, bit: usize) -> bool {
        assert!(bit < self.bits, "pattern index {bit} out of range");
        self.words[node * self.cap + bit / 64] >> (bit % 64) & 1 == 1
    }

    /// Literal `lit`'s value under pattern `bit` (complement applied).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= num_bits()`.
    #[inline]
    pub fn lit_value(&self, lit: Lit, bit: usize) -> bool {
        self.value(lit.var(), bit) ^ lit.is_complement()
    }

    /// Word `w` of the signature of literal `lit` (complement applied).
    #[inline]
    pub fn lit_word(&self, lit: Lit, w: usize) -> u64 {
        self.words[lit.var() * self.cap + w] ^ complement_mask(lit)
    }

    /// Appends whole pattern words (64 patterns each) and re-simulates
    /// **only the new columns** of every gate. If the current pattern
    /// count is not word-aligned, the zero padding of the last word is
    /// promoted to real (all-zeroes-input) patterns first, so appended
    /// words always start on a word boundary.
    ///
    /// # Panics
    ///
    /// Panics if `new_pi_words.len() != aig.num_pis()` or the rows are
    /// ragged.
    pub fn append_pattern_words(&mut self, aig: &Aig, new_pi_words: &[Vec<u64>]) {
        assert_eq!(
            new_pi_words.len(),
            aig.num_pis(),
            "one pattern row per input required"
        );
        let add = new_pi_words.first().map_or(0, Vec::len);
        if add == 0 {
            self.bits = self.num_words() * 64;
            return;
        }
        let used = self.num_words();
        self.reserve(aig, used + add);
        for (i, row) in new_pi_words.iter().enumerate() {
            assert_eq!(row.len(), add, "ragged simulation input");
            let base = (1 + i) * self.cap + used;
            self.words[base..base + add].copy_from_slice(row);
        }
        self.bits = (used + add) * 64;
        self.simulate_columns(aig, used, used + add);
    }

    /// Appends one pattern per counterexample (`cexes[j][i]` is input `i`
    /// of counterexample `j`), packing bits into the last partially-used
    /// word before allocating fresh words, then re-simulates only the
    /// touched word columns.
    ///
    /// # Panics
    ///
    /// Panics if any counterexample's length differs from `aig.num_pis()`.
    pub fn append_counterexamples(&mut self, aig: &Aig, cexes: &[Vec<bool>]) {
        if cexes.is_empty() {
            return;
        }
        let first_word = self.bits / 64;
        let new_bits = self.bits + cexes.len();
        self.reserve(aig, new_bits.div_ceil(64));
        for (j, cex) in cexes.iter().enumerate() {
            assert_eq!(cex.len(), aig.num_pis(), "counterexample arity");
            let bit = self.bits + j;
            let (w, b) = (bit / 64, bit % 64);
            for (i, &v) in cex.iter().enumerate() {
                if v {
                    self.words[(1 + i) * self.cap + w] |= 1u64 << b;
                }
            }
        }
        self.bits = new_bits;
        let end = self.num_words();
        self.simulate_columns(aig, first_word, end);
    }

    /// A 64-bit hash of the node's signature canonicalised up to
    /// complement, plus the phase that canonicalisation chose (`true`
    /// means the complemented signature is the canonical one — the same
    /// convention as taking the lexicographic minimum of the signature
    /// and its complement).
    ///
    /// Two nodes with equal (or exactly complementary) signatures always
    /// produce the same hash; unequal signatures collide with ordinary
    /// 64-bit-hash probability, so callers partitioning candidate classes
    /// should confirm bucket members with [`SimTable::rows_equal`].
    pub fn sig_hash(&self, node: usize) -> (u64, bool) {
        let row = self.row(node);
        // Lexicographic min(sig, !sig) is decided by the first word (a
        // word never equals its own complement): sig wins iff its top
        // bit is clear.
        let phase = row.first().is_some_and(|w| w >> 63 == 1);
        let flip = if phase { !0u64 } else { 0u64 };
        let mut hash = 0x9E37_79B9_7F4A_7C15u64 ^ row.len() as u64;
        for &w in row {
            hash = crate::splitmix64(hash ^ (w ^ flip));
        }
        (hash, phase)
    }

    /// Whether two rows are equal (`complement == false`) or exactly
    /// complementary (`complement == true`), compared in place.
    pub fn rows_equal(&self, a: usize, b: usize, complement: bool) -> bool {
        let flip = if complement { !0u64 } else { 0u64 };
        self.row(a)
            .iter()
            .zip(self.row(b))
            .all(|(&wa, &wb)| wa == wb ^ flip)
    }

    /// Simulates word columns `w0..w1` of every gate (inputs must already
    /// hold their pattern words in that range).
    fn simulate_columns(&mut self, aig: &Aig, w0: usize, w1: usize) {
        debug_assert!(w1 <= self.cap);
        for var in aig.ands() {
            let (f0, f1) = (aig.fanin0(var), aig.fanin1(var));
            let (m0, m1) = (complement_mask(f0), complement_mask(f1));
            let (b0, b1) = (f0.var() * self.cap, f1.var() * self.cap);
            // Fanins precede `var` in arena order, so their rows end
            // before this node's row begins.
            let (sources, target) = self.words.split_at_mut(var * self.cap);
            for w in w0..w1 {
                target[w] = (sources[b0 + w] ^ m0) & (sources[b1 + w] ^ m1);
            }
        }
    }

    /// Grows the row stride to at least `words` (amortised doubling),
    /// repacking every row into the new layout.
    fn reserve(&mut self, aig: &Aig, words: usize) {
        if words <= self.cap {
            return;
        }
        let new_cap = words.max(self.cap * 2);
        let mut grown = vec![0u64; self.num_nodes * new_cap];
        let used = self.num_words();
        for node in 0..self.num_nodes {
            grown[node * new_cap..node * new_cap + used]
                .copy_from_slice(&self.words[node * self.cap..node * self.cap + used]);
        }
        debug_assert_eq!(self.num_nodes, aig.num_nodes());
        self.words = grown;
        self.cap = new_cap;
    }
}

#[inline]
fn complement_mask(lit: Lit) -> u64 {
    if lit.is_complement() {
        !0u64
    } else {
        0u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_gate_aig() -> (Aig, Lit, Lit) {
        let mut aig = Aig::new(3);
        let (a, b, c) = (aig.pi(0), aig.pi(1), aig.pi(2));
        let ab = aig.and(a, b);
        let f = aig.or(ab, !c);
        aig.add_po(f);
        (aig, ab, f)
    }

    #[test]
    fn from_patterns_matches_scalar_simulation() {
        let (aig, _, _) = two_gate_aig();
        let patterns = vec![
            vec![0xF0F0, 0x1234],
            vec![0xCCCC, 0xFFFF],
            vec![0xAAAA, 0x0000],
        ];
        let table = SimTable::from_patterns(&aig, &patterns, 2);
        for w in 0..2 {
            let word_inputs: Vec<u64> = patterns.iter().map(|row| row[w]).collect();
            let outs = aig.simulate(&word_inputs);
            for (o, &po) in aig.pos().iter().enumerate() {
                assert_eq!(table.lit_word(po, w), outs[o], "output {o} word {w}");
            }
        }
        assert_eq!(table.num_bits(), 128);
        assert_eq!(table.num_words(), 2);
    }

    #[test]
    fn append_words_simulates_only_new_columns_identically() {
        let (aig, ab, f) = two_gate_aig();
        let first = vec![vec![0x00FF], vec![0x0F0F], vec![0x3333]];
        let second = vec![
            vec![0xDEAD, 0xBEEF],
            vec![0xFACE, 0x0123],
            vec![0x4567, 0x89AB],
        ];
        let mut incremental = SimTable::from_patterns(&aig, &first, 1);
        incremental.append_pattern_words(&aig, &second);

        let full: Vec<Vec<u64>> = first
            .iter()
            .zip(&second)
            .map(|(a, b)| a.iter().chain(b).copied().collect())
            .collect();
        let scratch = SimTable::from_patterns(&aig, &full, 3);
        for node in [ab.var(), f.var()] {
            assert_eq!(incremental.row(node), scratch.row(node));
        }
        assert_eq!(incremental.num_bits(), scratch.num_bits());
    }

    #[test]
    fn counterexamples_pack_into_the_partial_word() {
        let (aig, _, f) = two_gate_aig();
        let mut table = SimTable::from_patterns(&aig, &[vec![0], vec![0], vec![0]], 1);
        // Three single-pattern rounds: all land in the same fresh word.
        table.append_counterexamples(&aig, &[vec![true, true, false]]);
        assert_eq!(table.num_bits(), 65);
        assert_eq!(table.num_words(), 2);
        table.append_counterexamples(&aig, &[vec![false, false, true]]);
        table.append_counterexamples(&aig, &[vec![true, true, true]]);
        assert_eq!(table.num_bits(), 67);
        assert_eq!(table.num_words(), 2, "bits must pack, not open new words");
        // f = (a & b) | !c on the three appended patterns.
        assert!(table.lit_value(f, 64)); // (1&1)|!0
        assert!(!table.lit_value(f, 65)); // (0&0)|!1
        assert!(table.lit_value(f, 66)); // (1&1)|!1

        // Padding columns of the last word carry the all-zeroes input:
        // f(0,0,0) = (0&0)|!0 = 1 at the node behind the literal.
        let pad_word = table.lit_word(f, 1);
        assert_eq!(pad_word >> 3 & 1, 1, "padding simulates all-zero input");
    }

    #[test]
    fn capacity_growth_preserves_rows() {
        let (aig, ab, f) = two_gate_aig();
        let mut table = SimTable::from_patterns(&aig, &[vec![7], vec![9], vec![5]], 1);
        // 200 counterexamples forces several capacity doublings.
        let cexes: Vec<Vec<bool>> = (0..200)
            .map(|j| vec![j % 2 == 0, j % 3 == 0, j % 5 == 0])
            .collect();
        table.append_counterexamples(&aig, &cexes);
        assert_eq!(table.num_bits(), 264);
        for (j, cex) in cexes.iter().enumerate() {
            let expect_ab = cex[0] && cex[1];
            let expect_f = expect_ab || !cex[2];
            assert_eq!(table.lit_value(ab, 64 + j), expect_ab, "ab at {j}");
            assert_eq!(table.lit_value(f, 64 + j), expect_f, "f at {j}");
        }
    }

    #[test]
    fn sig_hash_canonicalises_complements() {
        // Two inputs driven by exactly complementary patterns hash
        // identically with opposite phases.
        let mut aig = Aig::new(2);
        let g = aig.and(aig.pi(0), aig.pi(1));
        aig.add_po(g);
        let w = 0x8123_4567_89AB_CDEFu64; // top bit set: complemented canonical
        let table = SimTable::from_patterns(&aig, &[vec![w], vec![!w]], 1);
        let (h0, p0) = table.sig_hash(1);
        let (h1, p1) = table.sig_hash(2);
        assert_eq!(h0, h1);
        assert_ne!(p0, p1);
        assert!(
            p0,
            "top bit set means the complemented signature is canonical"
        );
        assert!(table.rows_equal(1, 2, true));
        assert!(!table.rows_equal(1, 2, false));
    }
}
