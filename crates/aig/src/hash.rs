//! The workspace's one deterministic hash primitive.
//!
//! Everything that needs a process- and platform-stable hash — structural
//! [content hashes](crate::Aig::content_hash), the evaluation engine's
//! shard selection, the persistent store's entry checksums — builds on
//! this pair, so the constants live in exactly one place. None of it is
//! cryptographic: these guard against accidents (truncation, bit rot,
//! unlucky bucketing), not adversaries.

/// FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The SplitMix64 finaliser. FNV's low bits are weak on short keys;
/// follow [`fnv1a64`] with this when the hash is reduced modulo a small
/// number (shard counts, table sizes).
pub fn splitmix64(mut hash: u64) -> u64 {
    hash = (hash ^ (hash >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    hash = (hash ^ (hash >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    hash ^ (hash >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        // Canonical FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn finaliser_spreads_low_bits() {
        // Keys differing only in high bits must land in different low
        // bits after finalising (the property shard selection needs).
        let a = splitmix64(1u64 << 60);
        let b = splitmix64(1u64 << 61);
        assert_ne!(a & 0xFF, b & 0xFF);
    }
}
