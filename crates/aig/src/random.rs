//! Seeded random AIG generation, used throughout the workspace's property
//! tests to exercise transforms on arbitrary (but reproducible) graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Aig, Lit};

/// Generates a pseudo-random combinational AIG.
///
/// The generator draws `num_gates` gate descriptors; each picks two previous
/// nodes (with random complementation) and ANDs them. Because construction
/// goes through structural hashing, the resulting AIG may contain fewer than
/// `num_gates` gates. A random non-empty subset of nodes (biased toward deep
/// ones) drives `num_pos` outputs.
///
/// ```
/// use boils_aig::random_aig;
///
/// let aig = random_aig(42, 6, 30, 3);
/// assert_eq!(aig.num_pis(), 6);
/// assert_eq!(aig.num_pos(), 3);
/// aig.check().unwrap();
/// ```
pub fn random_aig(seed: u64, num_pis: usize, num_gates: usize, num_pos: usize) -> Aig {
    assert!(num_pis >= 1, "need at least one input");
    assert!(num_pos >= 1, "need at least one output");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aig = Aig::new(num_pis);
    let mut frontier: Vec<Lit> = (0..num_pis).map(|i| aig.pi(i)).collect();
    for _ in 0..num_gates {
        let a = frontier[rng.gen_range(0..frontier.len())];
        let b = frontier[rng.gen_range(0..frontier.len())];
        let a = a.xor_complement(rng.gen_bool(0.5));
        let b = b.xor_complement(rng.gen_bool(0.5));
        let lit = aig.and(a, b);
        if !lit.is_const() {
            frontier.push(lit);
        }
    }
    for _ in 0..num_pos {
        // Bias toward recently created (deeper) nodes so outputs see logic.
        let idx = frontier.len() - 1 - rng.gen_range(0..frontier.len().min(8));
        let lit = frontier[idx].xor_complement(rng.gen_bool(0.5));
        aig.add_po(lit);
    }
    aig.set_name(format!("random_{seed}"));
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = random_aig(7, 5, 40, 2);
        let b = random_aig(7, 5, 40, 2);
        assert_eq!(a.num_ands(), b.num_ands());
        assert_eq!(a.simulate_exhaustive(), b.simulate_exhaustive());
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_aig(1, 5, 40, 2);
        let b = random_aig(2, 5, 40, 2);
        // Either the structure or the function differs with overwhelming
        // probability; check the cheap structural signal first.
        assert!(a.num_ands() != b.num_ands() || a.simulate_exhaustive() != b.simulate_exhaustive());
    }

    #[test]
    fn generated_graphs_are_valid() {
        for seed in 0..20 {
            let aig = random_aig(seed, 4 + (seed as usize % 5), 60, 3);
            aig.check().expect("random AIG must satisfy invariants");
        }
    }
}
