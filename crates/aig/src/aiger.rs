//! ASCII AIGER (`.aag`) serialisation.
//!
//! Only the combinational subset is supported (no latches), which is all the
//! EPFL arithmetic benchmarks use. The format is the classic
//! `aag M I L O A` header followed by input, output and and-gate lines.

use std::io::{BufRead, BufReader, Read, Write};

use crate::error::ParseAagError;
use crate::{Aig, Lit};

impl Aig {
    /// Serialises the AIG to an ASCII AIGER (`.aag`) stream.
    ///
    /// Note that a `&mut` reference can be passed as the writer.
    ///
    /// # Errors
    ///
    /// Propagates any I/O failure from the writer.
    pub fn write_aag<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        let m = self.num_nodes() - 1;
        writeln!(
            w,
            "aag {} {} 0 {} {}",
            m,
            self.num_pis(),
            self.num_pos(),
            self.num_ands()
        )?;
        for i in 0..self.num_pis() {
            writeln!(w, "{}", self.pi(i).raw())?;
        }
        for po in self.pos() {
            writeln!(w, "{}", po.raw())?;
        }
        for var in self.ands() {
            writeln!(
                w,
                "{} {} {}",
                Lit::from_var(var, false).raw(),
                self.fanin0(var).raw(),
                self.fanin1(var).raw()
            )?;
        }
        if !self.name().is_empty() {
            writeln!(w, "c")?;
            writeln!(w, "{}", self.name())?;
        }
        Ok(())
    }

    /// Parses an ASCII AIGER (`.aag`) stream into an AIG.
    ///
    /// The gates are restrashed on the way in, so the parsed AIG may have
    /// fewer gates than the file if the file contained structural duplicates.
    /// A `&mut` reference can be passed as the reader.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseAagError`] describing the first syntactic or
    /// structural problem found.
    pub fn read_aag<R: Read>(r: R) -> Result<Aig, ParseAagError> {
        let reader = BufReader::new(r);
        let mut lines = reader.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| ParseAagError::BadHeader(String::from("<empty stream>")))?;
        let header = header?;
        let fields: Vec<&str> = header.split_whitespace().collect();
        if fields.len() != 6 || fields[0] != "aag" {
            return Err(ParseAagError::BadHeader(header));
        }
        let parse = |s: &str| -> Result<usize, ParseAagError> {
            s.parse()
                .map_err(|_| ParseAagError::BadHeader(header.clone()))
        };
        let (_m, i, l, o, a) = (
            parse(fields[1])?,
            parse(fields[2])?,
            parse(fields[3])?,
            parse(fields[4])?,
            parse(fields[5])?,
        );
        if l != 0 {
            return Err(ParseAagError::LatchesUnsupported);
        }

        let mut aig = Aig::new(i);
        // Map from file variable index to our literal.
        let mut map: Vec<Option<Lit>> = vec![None; 1 + i + a];
        map[0] = Some(Lit::FALSE);

        let next_line = |lines: &mut dyn Iterator<Item = (usize, std::io::Result<String>)>|
         -> Result<(usize, String), ParseAagError> {
            let (n, line) = lines.next().ok_or(ParseAagError::BadLine {
                line_number: 0,
                message: String::from("unexpected end of file"),
            })?;
            Ok((n + 1, line?))
        };

        let mut input_vars = Vec::with_capacity(i);
        for k in 0..i {
            let (n, line) = next_line(&mut lines)?;
            let raw: u32 = line.trim().parse().map_err(|_| ParseAagError::BadLine {
                line_number: n,
                message: format!("bad input literal {line:?}"),
            })?;
            let var = (raw >> 1) as usize;
            if raw & 1 == 1 || var == 0 || var >= map.len() {
                return Err(ParseAagError::BadLine {
                    line_number: n,
                    message: format!("invalid input literal {raw}"),
                });
            }
            map[var] = Some(aig.pi(k));
            input_vars.push(var);
        }

        let mut output_raws = Vec::with_capacity(o);
        for _ in 0..o {
            let (n, line) = next_line(&mut lines)?;
            let raw: u32 = line.trim().parse().map_err(|_| ParseAagError::BadLine {
                line_number: n,
                message: format!("bad output literal {line:?}"),
            })?;
            output_raws.push(raw);
        }

        for _ in 0..a {
            let (n, line) = next_line(&mut lines)?;
            let mut parts = line.split_whitespace();
            let mut field = || -> Result<u32, ParseAagError> {
                parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ParseAagError::BadLine {
                        line_number: n,
                        message: format!("bad and-gate line {line:?}"),
                    })
            };
            let (lhs, rhs0, rhs1) = (field()?, field()?, field()?);
            if lhs & 1 == 1 {
                return Err(ParseAagError::BadLine {
                    line_number: n,
                    message: format!("and-gate output literal {lhs} is complemented"),
                });
            }
            let lv = (lhs >> 1) as usize;
            if lv >= map.len() || map[lv].is_some() {
                return Err(ParseAagError::BadLine {
                    line_number: n,
                    message: format!("and-gate redefines variable {lv}"),
                });
            }
            let fan = |raw: u32| -> Result<Lit, ParseAagError> {
                let v = (raw >> 1) as usize;
                let base = map
                    .get(v)
                    .copied()
                    .flatten()
                    .ok_or(ParseAagError::NotTopological { gate_literal: lhs })?;
                Ok(base.xor_complement(raw & 1 == 1))
            };
            let (f0, f1) = (fan(rhs0)?, fan(rhs1)?);
            map[lv] = Some(aig.and(f0, f1));
        }

        for raw in output_raws {
            let v = (raw >> 1) as usize;
            let base = map
                .get(v)
                .copied()
                .flatten()
                .ok_or(ParseAagError::UndefinedLiteral(raw))?;
            aig.add_po(base.xor_complement(raw & 1 == 1));
        }

        // Optional comment section: first comment line becomes the name.
        let mut saw_comment_marker = false;
        for (_, line) in lines {
            let line = line?;
            if saw_comment_marker {
                aig.set_name(line.trim().to_string());
                break;
            }
            if line.trim() == "c" {
                saw_comment_marker = true;
            }
        }
        Ok(aig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_aig() -> Aig {
        let mut aig = Aig::new(3);
        let (a, b, c) = (aig.pi(0), aig.pi(1), aig.pi(2));
        let ab = aig.and(a, b);
        let f = aig.mux(c, ab, !a);
        aig.add_po(f);
        aig.add_po(!ab);
        aig.set_name("sample");
        aig
    }

    #[test]
    fn round_trip_preserves_function() {
        let aig = sample_aig();
        let mut buf = Vec::new();
        aig.write_aag(&mut buf).expect("write to vec cannot fail");
        let back = Aig::read_aag(buf.as_slice()).expect("round trip parses");
        assert_eq!(back.num_pis(), aig.num_pis());
        assert_eq!(back.num_pos(), aig.num_pos());
        assert_eq!(back.name(), "sample");
        assert_eq!(back.simulate_exhaustive(), aig.simulate_exhaustive());
        back.check().expect("parsed AIG is valid");
    }

    #[test]
    fn parses_reference_example() {
        // The canonical and-gate example from the AIGER docs: o = a & b.
        let text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
        let aig = Aig::read_aag(text.as_bytes()).expect("valid aag");
        assert_eq!(aig.num_pis(), 2);
        assert_eq!(aig.num_ands(), 1);
        assert_eq!(aig.simulate_exhaustive()[0][0], 0b1000);
    }

    #[test]
    fn rejects_latches() {
        let text = "aag 1 0 1 0 0\n2 3\n";
        assert!(matches!(
            Aig::read_aag(text.as_bytes()),
            Err(ParseAagError::LatchesUnsupported)
        ));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            Aig::read_aag("not an aag".as_bytes()),
            Err(ParseAagError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_forward_reference() {
        // Gate 6 uses literal 8 which is defined later.
        let text = "aag 4 2 0 1 2\n2\n4\n6\n6 8 2\n8 2 4\n";
        assert!(matches!(
            Aig::read_aag(text.as_bytes()),
            Err(ParseAagError::NotTopological { .. })
        ));
    }
}
