//! Attributed-graph features for cross-circuit similarity.
//!
//! A [`CircuitFeatures`] vector summarises an AIG by cheap structural
//! statistics — interface width, size, depth, level and fanout shape —
//! the signal used by the semantic store's surrogate warm-start transfer:
//! a new job's search is seeded from the recorded history of the most
//! *similar* circuit, where similarity is a distance in this feature
//! space. The features deliberately stay O(nodes) to compute (one
//! [`levels`](crate::Aig::levels) and one
//! [`fanout_counts`](crate::Aig::fanout_counts) pass), in the spirit of
//! attributed-graph kernels over netlists: structure decides *where the
//! search starts*, never what a cost is — every transferred sequence is
//! re-evaluated exactly on the target circuit.

use crate::Aig;

/// Number of scalar features in the vector (the serialised width).
pub const CIRCUIT_FEATURE_DIM: usize = 8;

/// Structural feature vector of one circuit.
///
/// All fields are stored as `f64` so the vector serialises uniformly and
/// distances need no per-field casts; counts are exact integers in `f64`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CircuitFeatures {
    /// Primary inputs.
    pub num_pis: f64,
    /// Primary outputs.
    pub num_pos: f64,
    /// AND nodes.
    pub num_ands: f64,
    /// Longest PI→PO path (AND levels).
    pub depth: f64,
    /// Mean AND-node level: where the logic mass sits between the
    /// interface and the critical path.
    pub mean_level: f64,
    /// Mean fanout over nodes with at least one fanout.
    pub mean_fanout: f64,
    /// Largest single-node fanout.
    pub max_fanout: f64,
    /// AND nodes per primary input: logic density relative to the
    /// interface, separating wide-shallow from narrow-deep circuits of
    /// equal size.
    pub ands_per_pi: f64,
}

impl CircuitFeatures {
    /// Computes the feature vector of `aig` in one pass over its nodes.
    pub fn of(aig: &Aig) -> CircuitFeatures {
        let num_pis = aig.num_pis() as f64;
        let num_ands = aig.num_ands() as f64;
        let levels = aig.levels();
        let depth = aig
            .pos()
            .iter()
            .map(|po| levels[po.var()])
            .max()
            .unwrap_or(0) as f64;
        let and_levels: u64 = aig.ands().map(|var| u64::from(levels[var])).sum();
        let mean_level = if aig.num_ands() == 0 {
            0.0
        } else {
            and_levels as f64 / num_ands
        };
        let fanouts = aig.fanout_counts();
        let driving: Vec<u32> = fanouts.iter().copied().filter(|&c| c > 0).collect();
        let mean_fanout = if driving.is_empty() {
            0.0
        } else {
            driving.iter().map(|&c| u64::from(c)).sum::<u64>() as f64 / driving.len() as f64
        };
        let max_fanout = f64::from(fanouts.iter().copied().max().unwrap_or(0));
        CircuitFeatures {
            num_pis,
            num_pos: aig.num_pos() as f64,
            num_ands,
            depth,
            mean_level,
            mean_fanout,
            max_fanout,
            ands_per_pi: if num_pis == 0.0 {
                0.0
            } else {
                num_ands / num_pis
            },
        }
    }

    /// The vector as a fixed-width slice (the serialisation order).
    pub fn to_array(self) -> [f64; CIRCUIT_FEATURE_DIM] {
        [
            self.num_pis,
            self.num_pos,
            self.num_ands,
            self.depth,
            self.mean_level,
            self.mean_fanout,
            self.max_fanout,
            self.ands_per_pi,
        ]
    }

    /// Rebuilds a vector from its serialised order; `None` unless exactly
    /// [`CIRCUIT_FEATURE_DIM`] finite values are given.
    pub fn from_slice(values: &[f64]) -> Option<CircuitFeatures> {
        if values.len() != CIRCUIT_FEATURE_DIM || values.iter().any(|v| !v.is_finite()) {
            return None;
        }
        Some(CircuitFeatures {
            num_pis: values[0],
            num_pos: values[1],
            num_ands: values[2],
            depth: values[3],
            mean_level: values[4],
            mean_fanout: values[5],
            max_fanout: values[6],
            ands_per_pi: values[7],
        })
    }

    /// Similarity to `other` in `(0, 1]`: `1` for identical vectors,
    /// decaying with the root-mean-square distance in log-scaled feature
    /// space. Log scaling (`ln(1 + x)`) makes the metric care about
    /// *ratios* — a 100-AND and a 200-AND circuit are as far apart as a
    /// 1 000-AND and a 2 000-AND one — which is the right invariance for
    /// "does synthesis behave alike here".
    pub fn similarity(&self, other: &CircuitFeatures) -> f64 {
        let a = self.to_array();
        let b = other.to_array();
        let sq: f64 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| {
                let d = x.max(0.0).ln_1p() - y.max(0.0).ln_1p();
                d * d
            })
            .sum();
        1.0 / (1.0 + (sq / CIRCUIT_FEATURE_DIM as f64).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_aig;

    #[test]
    fn features_are_deterministic_and_self_similar() {
        let aig = random_aig(7, 8, 200, 4);
        let a = CircuitFeatures::of(&aig);
        let b = CircuitFeatures::of(&aig);
        assert_eq!(a, b);
        assert_eq!(a.similarity(&b), 1.0);
        assert_eq!(a.num_pis, 8.0);
        assert_eq!(a.num_pos, 4.0);
        assert!(a.num_ands > 0.0);
        assert!(a.depth > 0.0);
        assert!(a.mean_level > 0.0 && a.mean_level <= a.depth);
        assert!(a.mean_fanout >= 1.0);
        assert!(a.max_fanout >= a.mean_fanout);
        assert_eq!(a.ands_per_pi, a.num_ands / 8.0);
    }

    #[test]
    fn similar_circuits_score_above_dissimilar_ones() {
        let base = CircuitFeatures::of(&random_aig(1, 8, 200, 4));
        let near = CircuitFeatures::of(&random_aig(2, 8, 210, 4));
        let far = CircuitFeatures::of(&random_aig(3, 32, 2000, 16));
        assert!(base.similarity(&near) > base.similarity(&far));
        // Symmetry and range.
        assert_eq!(base.similarity(&near), near.similarity(&base));
        assert!(base.similarity(&far) > 0.0 && base.similarity(&far) < 1.0);
    }

    #[test]
    fn feature_vectors_round_trip_through_serialisation_order() {
        let features = CircuitFeatures::of(&random_aig(9, 6, 120, 3));
        let array = features.to_array();
        assert_eq!(CircuitFeatures::from_slice(&array), Some(features));
        assert!(CircuitFeatures::from_slice(&array[..7]).is_none());
        let mut bad = array;
        bad[2] = f64::NAN;
        assert!(CircuitFeatures::from_slice(&bad).is_none());
    }
}
