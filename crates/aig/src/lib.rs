//! # boils-aig — And-Inverter Graph substrate
//!
//! The foundational data structure of the BOiLS reproduction: a structurally
//! hashed, always-topological [And-Inverter Graph](Aig) with
//! complement-edge [literals](Lit), bit-parallel and exhaustive
//! [simulation](Aig::simulate), MFFC analysis, [AIGER I/O](Aig::write_aag)
//! and a seeded [random generator](random_aig) for property testing.
//!
//! All logic-synthesis transforms (`boils-synth`), the LUT mapper
//! (`boils-mapper`) and the benchmark generators (`boils-circuits`) operate
//! on this representation, mirroring how ABC centres on its AIG package.
//!
//! ## Example
//!
//! ```
//! use boils_aig::{Aig, Lit};
//!
//! // A full adder: sum = a ^ b ^ cin, carry = maj(a, b, cin).
//! let mut aig = Aig::new(3);
//! let (a, b, cin) = (aig.pi(0), aig.pi(1), aig.pi(2));
//! let ab = aig.xor(a, b);
//! let sum = aig.xor(ab, cin);
//! let carry = aig.maj(a, b, cin);
//! aig.add_po(sum);
//! aig.add_po(carry);
//!
//! assert_eq!(aig.num_pos(), 2);
//! assert!(aig.num_ands() <= 12);
//! aig.check().unwrap();
//! ```

mod aig;
mod aiger;
mod error;
mod export;
mod features;
mod hash;
mod lit;
mod random;
mod sim;

pub use crate::aig::{input_pattern, Aig};
pub use crate::error::{CheckAigError, ParseAagError};
pub use crate::features::{CircuitFeatures, CIRCUIT_FEATURE_DIM};
pub use crate::hash::{fnv1a64, splitmix64};
pub use crate::lit::Lit;
pub use crate::random::random_aig;
pub use crate::sim::SimTable;
