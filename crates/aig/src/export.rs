//! Additional interchange formats: binary AIGER (`.aig`), Graphviz DOT and
//! structural Verilog.

use std::io::{BufRead, BufReader, Read, Write};

use crate::error::ParseAagError;
use crate::{Aig, Lit};

impl Aig {
    /// Serialises the AIG in the binary AIGER (`.aig`) format.
    ///
    /// Binary AIGER requires inputs and AND gates to be consecutively
    /// numbered, which this arena layout already guarantees; fanin deltas
    /// are LEB128-style 7-bit encoded per the AIGER 1.9 specification.
    ///
    /// # Errors
    ///
    /// Propagates any I/O failure from the writer (which can be `&mut`).
    pub fn write_aig_binary<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        let m = self.num_nodes() - 1;
        writeln!(
            w,
            "aig {} {} 0 {} {}",
            m,
            self.num_pis(),
            self.num_pos(),
            self.num_ands()
        )?;
        for po in self.pos() {
            writeln!(w, "{}", po.raw())?;
        }
        for var in self.ands() {
            let lhs = Lit::from_var(var, false).raw();
            let (mut f0, mut f1) = (self.fanin0(var).raw(), self.fanin1(var).raw());
            // AIGER binary stores (lhs − max) then (max − min).
            if f0 < f1 {
                std::mem::swap(&mut f0, &mut f1);
            }
            debug_assert!(lhs > f0);
            write_delta(&mut w, lhs - f0)?;
            write_delta(&mut w, f0 - f1)?;
        }
        if !self.name().is_empty() {
            writeln!(w, "c")?;
            writeln!(w, "{}", self.name())?;
        }
        Ok(())
    }

    /// Parses a binary AIGER (`.aig`) stream.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseAagError`] for syntactic problems; latches are
    /// unsupported (combinational circuits only).
    pub fn read_aig_binary<R: Read>(r: R) -> Result<Aig, ParseAagError> {
        let mut reader = BufReader::new(r);
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let fields: Vec<&str> = header.split_whitespace().collect();
        if fields.len() != 6 || fields[0] != "aig" {
            return Err(ParseAagError::BadHeader(header));
        }
        let parse = |s: &str| -> Result<usize, ParseAagError> {
            s.parse()
                .map_err(|_| ParseAagError::BadHeader(header.clone()))
        };
        let (m, i, l, o, a) = (
            parse(fields[1])?,
            parse(fields[2])?,
            parse(fields[3])?,
            parse(fields[4])?,
            parse(fields[5])?,
        );
        if l != 0 {
            return Err(ParseAagError::LatchesUnsupported);
        }
        if m != i + a {
            return Err(ParseAagError::BadHeader(header));
        }
        let mut output_raws = Vec::with_capacity(o);
        for _ in 0..o {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let raw: u32 = line.trim().parse().map_err(|_| ParseAagError::BadLine {
                line_number: 0,
                message: format!("bad output literal {line:?}"),
            })?;
            output_raws.push(raw);
        }
        let mut aig = Aig::new(i);
        let mut map: Vec<Lit> = (0..=i).map(|v| Lit::from_var(v, false)).collect();
        for k in 0..a {
            let lhs = ((i + 1 + k) << 1) as u32;
            let d0 = read_delta(&mut reader)?;
            let d1 = read_delta(&mut reader)?;
            let f0 = lhs
                .checked_sub(d0)
                .ok_or(ParseAagError::UndefinedLiteral(lhs))?;
            let f1 = f0
                .checked_sub(d1)
                .ok_or(ParseAagError::UndefinedLiteral(lhs))?;
            let fan = |raw: u32| -> Result<Lit, ParseAagError> {
                let v = (raw >> 1) as usize;
                if v >= map.len() {
                    return Err(ParseAagError::NotTopological { gate_literal: lhs });
                }
                Ok(map[v].xor_complement(raw & 1 == 1))
            };
            let (a_lit, b_lit) = (fan(f0)?, fan(f1)?);
            map.push(aig.and(a_lit, b_lit));
        }
        for raw in output_raws {
            let v = (raw >> 1) as usize;
            let base = map
                .get(v)
                .copied()
                .ok_or(ParseAagError::UndefinedLiteral(raw))?;
            aig.add_po(base.xor_complement(raw & 1 == 1));
        }
        // Optional name from the comment section.
        let mut rest = String::new();
        reader.read_to_string(&mut rest)?;
        if let Some(name) = rest.lines().nth(1) {
            if rest.starts_with('c') {
                aig.set_name(name.trim().to_string());
            }
        }
        Ok(aig)
    }

    /// Renders the AIG as a Graphviz DOT digraph (dashed edges are
    /// complemented).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph aig {\n  rankdir=BT;\n");
        for idx in 0..self.num_pis() {
            let var = 1 + idx;
            writeln!(out, "  n{var} [shape=box,label=\"i{idx}\"];").expect("string write");
        }
        for var in self.ands() {
            writeln!(out, "  n{var} [shape=circle,label=\"∧\"];").expect("string write");
            for f in [self.fanin0(var), self.fanin1(var)] {
                let style = if f.is_complement() {
                    " [style=dashed]"
                } else {
                    ""
                };
                writeln!(out, "  n{} -> n{}{};", f.var(), var, style).expect("string write");
            }
        }
        for (k, po) in self.pos().iter().enumerate() {
            writeln!(out, "  o{k} [shape=invtriangle,label=\"o{k}\"];").expect("string write");
            let style = if po.is_complement() {
                " [style=dashed]"
            } else {
                ""
            };
            writeln!(out, "  n{} -> o{k}{};", po.var(), style).expect("string write");
        }
        out.push_str("}\n");
        out
    }

    /// Emits the AIG as structural Verilog (one `assign` per gate).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the writer.
    pub fn write_verilog<W: Write>(&self, mut w: W, module: &str) -> std::io::Result<()> {
        write!(w, "module {module}(")?;
        for i in 0..self.num_pis() {
            write!(w, "i{i}, ")?;
        }
        for k in 0..self.num_pos() {
            write!(w, "o{k}{}", if k + 1 == self.num_pos() { "" } else { ", " })?;
        }
        writeln!(w, ");")?;
        for i in 0..self.num_pis() {
            writeln!(w, "  input i{i};")?;
        }
        for k in 0..self.num_pos() {
            writeln!(w, "  output o{k};")?;
        }
        let lit = |l: Lit| -> String {
            let base = if l.var() == 0 {
                String::from("1'b0")
            } else if self.is_pi(l.var()) {
                format!("i{}", l.var() - 1)
            } else {
                format!("n{}", l.var())
            };
            if l.is_complement() {
                format!("~{base}")
            } else {
                base
            }
        };
        for var in self.ands() {
            writeln!(w, "  wire n{var};")?;
            writeln!(
                w,
                "  assign n{var} = {} & {};",
                lit(self.fanin0(var)),
                lit(self.fanin1(var))
            )?;
        }
        for (k, po) in self.pos().iter().enumerate() {
            writeln!(w, "  assign o{k} = {};", lit(*po))?;
        }
        writeln!(w, "endmodule")?;
        Ok(())
    }
}

fn write_delta<W: Write>(w: &mut W, mut delta: u32) -> std::io::Result<()> {
    loop {
        let byte = (delta & 0x7F) as u8;
        delta >>= 7;
        if delta == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_delta<R: Read>(r: &mut R) -> Result<u32, ParseAagError> {
    let mut delta = 0u32;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        delta |= u32::from(byte[0] & 0x7F) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(delta);
        }
        shift += 7;
        if shift > 28 {
            return Err(ParseAagError::BadLine {
                line_number: 0,
                message: String::from("overlong delta encoding"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_aig;

    #[test]
    fn binary_aiger_round_trips() {
        for seed in 0..10 {
            let aig = random_aig(seed, 6, 80, 3).cleanup();
            let mut buf = Vec::new();
            aig.write_aig_binary(&mut buf).expect("write");
            let back = Aig::read_aig_binary(buf.as_slice()).expect("parse");
            assert_eq!(back.num_pis(), aig.num_pis());
            assert_eq!(
                back.simulate_exhaustive(),
                aig.simulate_exhaustive(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn binary_and_ascii_agree() {
        let aig = random_aig(3, 5, 50, 2).cleanup();
        let mut bin = Vec::new();
        let mut asc = Vec::new();
        aig.write_aig_binary(&mut bin).expect("write bin");
        aig.write_aag(&mut asc).expect("write asc");
        let from_bin = Aig::read_aig_binary(bin.as_slice()).expect("bin");
        let from_asc = Aig::read_aag(asc.as_slice()).expect("asc");
        assert_eq!(
            from_bin.simulate_exhaustive(),
            from_asc.simulate_exhaustive()
        );
    }

    #[test]
    fn delta_encoding_round_trips() {
        for v in [0u32, 1, 127, 128, 300, 16_383, 16_384, u32::MAX / 2] {
            let mut buf = Vec::new();
            write_delta(&mut buf, v).expect("write");
            let back = read_delta(&mut buf.as_slice()).expect("read");
            assert_eq!(back, v);
        }
    }

    #[test]
    fn dot_output_mentions_every_node() {
        let aig = random_aig(5, 4, 20, 2);
        let dot = aig.to_dot();
        assert!(dot.starts_with("digraph"));
        for var in aig.ands() {
            assert!(dot.contains(&format!("n{var} ")), "missing node {var}");
        }
        assert!(dot.contains("o0"));
    }

    #[test]
    fn verilog_is_emitted_for_all_interfaces() {
        let mut aig = Aig::new(2);
        let (a, b) = (aig.pi(0), aig.pi(1));
        let x = aig.xor(a, b);
        aig.add_po(x);
        aig.add_po(Lit::TRUE);
        let mut buf = Vec::new();
        aig.write_verilog(&mut buf, "xor2").expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.contains("module xor2"));
        assert!(text.contains("input i0;"));
        assert!(text.contains("assign o1 = ~1'b0;"));
        assert!(text.contains("endmodule"));
    }
}
