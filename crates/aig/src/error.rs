//! Error types for AIG construction and I/O.

use std::error::Error;
use std::fmt;

/// Error raised when parsing an ASCII AIGER (`.aag`) stream fails.
#[derive(Debug)]
pub enum ParseAagError {
    /// Underlying reader failure.
    Io(std::io::Error),
    /// The header line was missing or malformed.
    BadHeader(String),
    /// A body line (input, latch, output, and-gate) was malformed.
    BadLine { line_number: usize, message: String },
    /// The file declares latches, which combinational AIGs do not support.
    LatchesUnsupported,
    /// A literal referenced a node that was never defined.
    UndefinedLiteral(u32),
    /// The AND gates were not in topological order.
    NotTopological { gate_literal: u32 },
}

impl fmt::Display for ParseAagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAagError::Io(e) => write!(f, "i/o failure while reading aag: {e}"),
            ParseAagError::BadHeader(h) => write!(f, "malformed aag header: {h:?}"),
            ParseAagError::BadLine {
                line_number,
                message,
            } => write!(f, "malformed aag line {line_number}: {message}"),
            ParseAagError::LatchesUnsupported => {
                write!(f, "latches are not supported by combinational AIGs")
            }
            ParseAagError::UndefinedLiteral(l) => {
                write!(f, "literal {l} references an undefined node")
            }
            ParseAagError::NotTopological { gate_literal } => {
                write!(f, "and-gate {gate_literal} appears before its fanins")
            }
        }
    }
}

impl Error for ParseAagError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseAagError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ParseAagError {
    fn from(e: std::io::Error) -> Self {
        ParseAagError::Io(e)
    }
}

/// Error raised when an AIG fails a structural invariant check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckAigError {
    /// A node's fanin points at a node with a greater or equal index.
    NotTopological { node: usize, fanin: usize },
    /// A primary output references a node beyond the node table.
    DanglingOutput { output: usize, var: usize },
    /// Two live AND nodes share the same (ordered) fanin pair.
    DuplicateAnd { first: usize, second: usize },
}

impl fmt::Display for CheckAigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckAigError::NotTopological { node, fanin } => {
                write!(f, "node {node} has non-topological fanin {fanin}")
            }
            CheckAigError::DanglingOutput { output, var } => {
                write!(f, "output {output} references undefined node {var}")
            }
            CheckAigError::DuplicateAnd { first, second } => {
                write!(f, "nodes {first} and {second} are structurally identical")
            }
        }
    }
}

impl Error for CheckAigError {}
