//! The And-Inverter Graph container.

use std::collections::HashMap;
use std::fmt;

use crate::error::CheckAigError;
use crate::Lit;

/// One AIG node: a two-input AND gate or a terminal (constant / primary input).
///
/// Terminals store `Lit::FALSE` in both fanin slots; they are distinguished
/// from gates by their index (`0` is the constant, `1..=num_pis` are inputs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Node {
    pub(crate) fanin0: Lit,
    pub(crate) fanin1: Lit,
}

/// A combinational And-Inverter Graph.
///
/// Nodes live in a single arena and are always topologically ordered: a
/// gate's fanins have strictly smaller indices. Node `0` is the constant
/// false, nodes `1..=num_pis` are the primary inputs, and every following
/// node is a two-input AND. Edges ([`Lit`]) may be complemented, which is how
/// all inversion is expressed.
///
/// Construction goes through [`Aig::and`] (and the derived gate builders),
/// which performs constant propagation, trivial-case simplification and
/// structural hashing, so the graph never contains syntactically duplicated
/// gates.
///
/// ```
/// use boils_aig::Aig;
///
/// // f = (a & b) | c, as an AIG (one OR = AND + three complements).
/// let mut aig = Aig::new(3);
/// let (a, b, c) = (aig.pi(0), aig.pi(1), aig.pi(2));
/// let ab = aig.and(a, b);
/// let f = aig.or(ab, c);
/// aig.add_po(f);
///
/// assert_eq!(aig.num_ands(), 2);
/// // 0b…abc input ordering: simulate all four (a,b,c) = (1,1,0) → true, …
/// assert_eq!(aig.simulate(&[0b1100, 0b1010, 0b0001]), vec![0b1001]);
/// ```
#[derive(Clone)]
pub struct Aig {
    nodes: Vec<Node>,
    num_pis: usize,
    pos: Vec<Lit>,
    strash: HashMap<(u32, u32), u32>,
    name: String,
}

impl Aig {
    /// Creates an empty AIG with `num_pis` primary inputs and no outputs.
    pub fn new(num_pis: usize) -> Aig {
        let mut nodes = Vec::with_capacity(num_pis + 1);
        let terminal = Node {
            fanin0: Lit::FALSE,
            fanin1: Lit::FALSE,
        };
        nodes.resize(num_pis + 1, terminal);
        Aig {
            nodes,
            num_pis,
            pos: Vec::new(),
            strash: HashMap::new(),
            name: String::new(),
        }
    }

    /// A human-readable circuit name (empty by default).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the circuit name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The number of primary inputs.
    #[inline]
    pub fn num_pis(&self) -> usize {
        self.num_pis
    }

    /// The number of primary outputs.
    #[inline]
    pub fn num_pos(&self) -> usize {
        self.pos.len()
    }

    /// The number of AND gates currently in the arena.
    ///
    /// This is the standard "size" measure of an AIG (ABC's `and` count).
    #[inline]
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.num_pis
    }

    /// Total number of nodes including the constant and the inputs.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The literal of the `index`-th primary input (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_pis`.
    #[inline]
    pub fn pi(&self, index: usize) -> Lit {
        assert!(index < self.num_pis, "pi index {index} out of range");
        Lit::from_var(1 + index, false)
    }

    /// The literal driving the `index`-th primary output.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_pos`.
    #[inline]
    pub fn po(&self, index: usize) -> Lit {
        self.pos[index]
    }

    /// All primary-output driver literals, in order.
    #[inline]
    pub fn pos(&self) -> &[Lit] {
        &self.pos
    }

    /// Registers a new primary output driven by `lit` and returns its index.
    pub fn add_po(&mut self, lit: Lit) -> usize {
        debug_assert!(lit.var() < self.nodes.len());
        self.pos.push(lit);
        self.pos.len() - 1
    }

    /// Replaces the driver of output `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_po(&mut self, index: usize, lit: Lit) {
        debug_assert!(lit.var() < self.nodes.len());
        self.pos[index] = lit;
    }

    /// Whether node `var` is a primary input.
    #[inline]
    pub fn is_pi(&self, var: usize) -> bool {
        var >= 1 && var <= self.num_pis
    }

    /// Whether node `var` is an AND gate.
    #[inline]
    pub fn is_and(&self, var: usize) -> bool {
        var > self.num_pis && var < self.nodes.len()
    }

    /// First fanin of AND node `var`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `var` is not an AND gate.
    #[inline]
    pub fn fanin0(&self, var: usize) -> Lit {
        debug_assert!(self.is_and(var));
        self.nodes[var].fanin0
    }

    /// Second fanin of AND node `var`.
    #[inline]
    pub fn fanin1(&self, var: usize) -> Lit {
        debug_assert!(self.is_and(var));
        self.nodes[var].fanin1
    }

    /// Iterates over the indices of all AND gates in topological order.
    pub fn ands(&self) -> std::ops::Range<usize> {
        (self.num_pis + 1)..self.nodes.len()
    }

    /// Builds the AND of two literals.
    ///
    /// Applies the usual structural simplifications (`x & x = x`,
    /// `x & !x = 0`, constant folding) and structural hashing, so the result
    /// may be an existing node or even a constant.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Constant and trivial-case folding.
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        // Canonical fanin order for hashing.
        let (f0, f1) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        let key = (f0.raw(), f1.raw());
        if let Some(&var) = self.strash.get(&key) {
            return Lit::from_var(var as usize, false);
        }
        let var = self.nodes.len() as u32;
        self.nodes.push(Node {
            fanin0: f0,
            fanin1: f1,
        });
        self.strash.insert(key, var);
        Lit::from_var(var as usize, false)
    }

    /// Looks up the AND of two literals without creating it.
    ///
    /// Applies the same simplification rules as [`Aig::and`]; returns
    /// `Some` if the result is a constant, an operand, or an existing node,
    /// and `None` if building it would create a new gate. Used by rewriting
    /// to price candidate structures before committing them.
    pub fn find_and(&self, a: Lit, b: Lit) -> Option<Lit> {
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Some(Lit::FALSE);
        }
        if a == Lit::TRUE {
            return Some(b);
        }
        if b == Lit::TRUE || a == b {
            return Some(a);
        }
        let (f0, f1) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        self.strash
            .get(&(f0.raw(), f1.raw()))
            .map(|&var| Lit::from_var(var as usize, false))
    }

    /// Builds the OR of two literals.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// Builds the NAND of two literals.
    pub fn nand(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(a, b)
    }

    /// Builds the NOR of two literals.
    pub fn nor(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(!a, !b)
    }

    /// Builds the XOR of two literals (two AND gates plus sharing).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let nab = self.and(a, b);
        let nanb = self.and(!a, !b);
        self.nor(nab, nanb)
    }

    /// Builds the XNOR of two literals.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Builds a 2:1 multiplexer: `sel ? then_branch : else_branch`.
    pub fn mux(&mut self, sel: Lit, then_branch: Lit, else_branch: Lit) -> Lit {
        let t = self.and(sel, then_branch);
        let e = self.and(!sel, else_branch);
        self.or(t, e)
    }

    /// Builds a 3-input majority gate (the carry function of a full adder).
    pub fn maj(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.and(a, b);
        let ac = self.and(a, c);
        let bc = self.and(b, c);
        let or1 = self.or(ab, ac);
        self.or(or1, bc)
    }

    /// Builds the AND over an arbitrary collection of literals as a balanced
    /// tree, returning `Lit::TRUE` for an empty collection.
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => Lit::TRUE,
            1 => lits[0],
            _ => {
                let mut layer: Vec<Lit> = lits.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        next.push(if pair.len() == 2 {
                            self.and(pair[0], pair[1])
                        } else {
                            pair[0]
                        });
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    /// Builds the OR over an arbitrary collection of literals as a balanced
    /// tree, returning `Lit::FALSE` for an empty collection.
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        let inverted: Vec<Lit> = lits.iter().map(|&l| !l).collect();
        !self.and_many(&inverted)
    }

    /// Computes the level (depth from the inputs) of every node.
    ///
    /// Terminals have level 0; an AND gate is one level above its deepest
    /// fanin. Inverters are free, matching ABC's level model.
    pub fn levels(&self) -> Vec<u32> {
        let mut level = vec![0u32; self.nodes.len()];
        for var in self.ands() {
            let l0 = level[self.nodes[var].fanin0.var()];
            let l1 = level[self.nodes[var].fanin1.var()];
            level[var] = 1 + l0.max(l1);
        }
        level
    }

    /// The logic depth: the largest level among the output drivers.
    pub fn depth(&self) -> u32 {
        let level = self.levels();
        self.pos.iter().map(|po| level[po.var()]).max().unwrap_or(0)
    }

    /// Counts fanouts of every node (edges from AND fanins plus outputs).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for var in self.ands() {
            counts[self.nodes[var].fanin0.var()] += 1;
            counts[self.nodes[var].fanin1.var()] += 1;
        }
        for po in &self.pos {
            counts[po.var()] += 1;
        }
        counts
    }

    /// Removes dangling gates (gates not reachable from any output) and
    /// compacts the arena. Input and output order is preserved; the function
    /// of every output is unchanged.
    pub fn cleanup(&self) -> Aig {
        let mut reachable = vec![false; self.nodes.len()];
        reachable[..=self.num_pis].fill(true);
        // Mark transitive fanin of each PO. Arena order lets us do a single
        // reverse pass instead of an explicit DFS.
        let mut on_path = vec![false; self.nodes.len()];
        for po in &self.pos {
            on_path[po.var()] = true;
        }
        for var in self.ands().rev() {
            if on_path[var] {
                on_path[self.nodes[var].fanin0.var()] = true;
                on_path[self.nodes[var].fanin1.var()] = true;
            }
        }
        let mut out = Aig::new(self.num_pis);
        out.name = self.name.clone();
        let mut map: Vec<Lit> = vec![Lit::FALSE; self.nodes.len()];
        for (var, lit) in map.iter_mut().enumerate().take(self.num_pis + 1).skip(1) {
            *lit = Lit::from_var(var, false);
        }
        for var in self.ands() {
            if on_path[var] && !reachable[var] {
                let f0 = self.nodes[var].fanin0;
                let f1 = self.nodes[var].fanin1;
                let a = map[f0.var()].xor_complement(f0.is_complement());
                let b = map[f1.var()].xor_complement(f1.is_complement());
                map[var] = out.and(a, b);
            }
        }
        for po in &self.pos {
            let lit = map[po.var()].xor_complement(po.is_complement());
            out.add_po(lit);
        }
        out
    }

    /// Simulates the AIG on one 64-bit pattern word per input, returning one
    /// word per output. Bit `i` of each word is an independent pattern.
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len() != num_pis`.
    pub fn simulate(&self, pi_words: &[u64]) -> Vec<u64> {
        assert_eq!(pi_words.len(), self.num_pis, "one word per input required");
        let mut words = vec![0u64; self.nodes.len()];
        words[1..=self.num_pis].copy_from_slice(pi_words);
        for var in self.ands() {
            let n = self.nodes[var];
            let w0 = words[n.fanin0.var()] ^ mask(n.fanin0);
            let w1 = words[n.fanin1.var()] ^ mask(n.fanin1);
            words[var] = w0 & w1;
        }
        self.pos
            .iter()
            .map(|po| words[po.var()] ^ mask(*po))
            .collect()
    }

    /// Simulates every node on multi-word patterns; returns the full node
    /// table (`words_per_node` u64 words per node). Used by fraiging and
    /// resubstitution, which need signatures for internal nodes.
    ///
    /// Thin wrapper over the flat [`crate::SimTable`] (one allocation for
    /// the whole table); callers that re-simulate incrementally should use
    /// `SimTable` directly.
    ///
    /// # Panics
    ///
    /// Panics if any input row has a length different from `words_per_node`.
    pub fn simulate_nodes(&self, pi_words: &[Vec<u64>], words_per_node: usize) -> Vec<Vec<u64>> {
        let table = crate::SimTable::from_patterns(self, pi_words, words_per_node);
        (0..self.num_nodes())
            .map(|v| table.row(v).to_vec())
            .collect()
    }

    /// Exhaustively simulates all `2^num_pis` input combinations, returning
    /// the truth table of every output as packed 64-bit words (bit `i` is the
    /// output under the input assignment with binary encoding `i`, input 0
    /// being the least significant bit).
    ///
    /// # Panics
    ///
    /// Panics if `num_pis > 20` (the table would exceed a million bits).
    pub fn simulate_exhaustive(&self) -> Vec<Vec<u64>> {
        assert!(
            self.num_pis <= 20,
            "exhaustive simulation limited to 20 inputs"
        );
        let bits = 1usize << self.num_pis;
        let words = bits.div_ceil(64);
        let pi_words: Vec<Vec<u64>> = (0..self.num_pis).map(|i| input_pattern(i, words)).collect();
        let table = self.simulate_nodes(&pi_words, words);
        self.pos
            .iter()
            .map(|po| {
                let mut row = table[po.var()].clone();
                if po.is_complement() {
                    for w in &mut row {
                        *w = !*w;
                    }
                }
                if bits < 64 {
                    row[0] &= (1u64 << bits) - 1;
                } else if !bits.is_multiple_of(64) {
                    let last = row.len() - 1;
                    row[last] &= (1u64 << (bits % 64)) - 1;
                }
                row
            })
            .collect()
    }

    /// Verifies structural invariants: topological fanins, in-range outputs
    /// and the absence of duplicate gates.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn check(&self) -> Result<(), CheckAigError> {
        for var in self.ands() {
            let n = self.nodes[var];
            for fanin in [n.fanin0.var(), n.fanin1.var()] {
                if fanin >= var {
                    return Err(CheckAigError::NotTopological { node: var, fanin });
                }
            }
        }
        for (i, po) in self.pos.iter().enumerate() {
            if po.var() >= self.nodes.len() {
                return Err(CheckAigError::DanglingOutput {
                    output: i,
                    var: po.var(),
                });
            }
        }
        let mut seen: HashMap<(u32, u32), usize> = HashMap::new();
        for var in self.ands() {
            let n = self.nodes[var];
            let key = (n.fanin0.raw(), n.fanin1.raw());
            if let Some(&first) = seen.get(&key) {
                return Err(CheckAigError::DuplicateAnd { first, second: var });
            }
            seen.insert(key, var);
        }
        Ok(())
    }

    /// Size of the maximum fanout-free cone of `root` — the number of AND
    /// gates that would become dangling if `root` were removed.
    ///
    /// `refs` must be the current fanout counts (see [`Aig::fanout_counts`]);
    /// it is restored before returning.
    pub fn mffc_size(&self, root: usize, refs: &mut [u32]) -> usize {
        if !self.is_and(root) {
            return 0;
        }
        let count = self.deref_mffc(root, refs, &mut None);
        self.ref_mffc(root, refs);
        count
    }

    /// The nodes of the maximum fanout-free cone of `root` (including
    /// `root` itself). `refs` must be the current fanout counts and is
    /// restored before returning.
    pub fn mffc_nodes(&self, root: usize, refs: &mut [u32]) -> Vec<usize> {
        if !self.is_and(root) {
            return Vec::new();
        }
        let mut nodes = Some(Vec::new());
        self.deref_mffc(root, refs, &mut nodes);
        self.ref_mffc(root, refs);
        nodes.expect("collection vector present")
    }

    fn deref_mffc(&self, var: usize, refs: &mut [u32], out: &mut Option<Vec<usize>>) -> usize {
        let mut count = 1;
        if let Some(v) = out.as_mut() {
            v.push(var);
        }
        for fanin in [self.nodes[var].fanin0.var(), self.nodes[var].fanin1.var()] {
            refs[fanin] -= 1;
            if refs[fanin] == 0 && self.is_and(fanin) {
                count += self.deref_mffc(fanin, refs, out);
            }
        }
        count
    }

    fn ref_mffc(&self, var: usize, refs: &mut [u32]) {
        for fanin in [self.nodes[var].fanin0.var(), self.nodes[var].fanin1.var()] {
            if refs[fanin] == 0 && self.is_and(fanin) {
                self.ref_mffc(fanin, refs);
            }
            refs[fanin] += 1;
        }
    }

    /// A deterministic 64-bit hash of the graph's structure: input count,
    /// every AND gate's fanin literals in arena order, and the output
    /// drivers. Structurally identical AIGs (up to the name, which is
    /// excluded) always hash equally; distinct structures collide only
    /// with the ~2⁻⁶⁴ probability a 64-bit hash allows. The hash is
    /// stable across processes and platforms, so it can key persistent
    /// caches — see `boils_core::prefix::PersistentPrefixStore`.
    pub fn content_hash(&self) -> u64 {
        let mut bytes = Vec::with_capacity(16 * (self.num_ands() + self.pos.len() + 2));
        bytes.extend_from_slice(&(self.num_pis as u64).to_le_bytes());
        for var in self.ands() {
            bytes.extend_from_slice(&u64::from(self.nodes[var].fanin0.raw()).to_le_bytes());
            bytes.extend_from_slice(&u64::from(self.nodes[var].fanin1.raw()).to_le_bytes());
        }
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // gates/outputs separator
        for po in &self.pos {
            bytes.extend_from_slice(&u64::from(po.raw()).to_le_bytes());
        }
        crate::splitmix64(crate::fnv1a64(&bytes))
    }

    /// Collects the transitive fanin cone of `roots` (indices of all AND
    /// gates and inputs feeding them), in topological order.
    pub fn cone(&self, roots: &[usize]) -> Vec<usize> {
        let mut in_cone = vec![false; self.nodes.len()];
        for &r in roots {
            in_cone[r] = true;
        }
        for var in self.ands().rev() {
            if in_cone[var] {
                in_cone[self.nodes[var].fanin0.var()] = true;
                in_cone[self.nodes[var].fanin1.var()] = true;
            }
        }
        (0..self.nodes.len())
            .filter(|&v| in_cone[v] && v != 0)
            .collect()
    }
}

#[inline]
fn mask(lit: Lit) -> u64 {
    if lit.is_complement() {
        !0u64
    } else {
        0u64
    }
}

/// The canonical exhaustive-simulation pattern of input `index`, packed into
/// `words` 64-bit words (bit `p` of the pattern is bit `index` of `p`).
pub fn input_pattern(index: usize, words: usize) -> Vec<u64> {
    const MASKS: [u64; 6] = [
        0xAAAA_AAAA_AAAA_AAAA,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
        0xFF00_FF00_FF00_FF00,
        0xFFFF_0000_FFFF_0000,
        0xFFFF_FFFF_0000_0000,
    ];
    (0..words)
        .map(|w| {
            if index < 6 {
                MASKS[index]
            } else if w >> (index - 6) & 1 == 1 {
                !0u64
            } else {
                0u64
            }
        })
        .collect()
}

impl fmt::Debug for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Aig {{ name: {:?}, pis: {}, pos: {}, ands: {}, depth: {} }}",
            self.name,
            self.num_pis,
            self.pos.len(),
            self.num_ands(),
            self.depth()
        )?;
        for var in self.ands() {
            writeln!(
                f,
                "  n{} = {:?} & {:?}",
                var, self.nodes[var].fanin0, self.nodes[var].fanin1
            )?;
        }
        for (i, po) in self.pos.iter().enumerate() {
            writeln!(f, "  po{} = {:?}", i, po)?;
        }
        Ok(())
    }
}

impl fmt::Display for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: i/o = {}/{}, and = {}, lev = {}",
            if self.name.is_empty() {
                "aig"
            } else {
                &self.name
            },
            self.num_pis,
            self.pos.len(),
            self.num_ands(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_aig() -> Aig {
        let mut aig = Aig::new(2);
        let (a, b) = (aig.pi(0), aig.pi(1));
        let x = aig.xor(a, b);
        aig.add_po(x);
        aig
    }

    #[test]
    fn and_constant_folding() {
        let mut aig = Aig::new(2);
        let a = aig.pi(0);
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(Lit::TRUE, a), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), Lit::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_shares_nodes() {
        let mut aig = Aig::new(2);
        let (a, b) = (aig.pi(0), aig.pi(1));
        let x = aig.and(a, b);
        let y = aig.and(b, a);
        assert_eq!(x, y);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn xor_simulates_correctly() {
        let aig = xor_aig();
        // a = 0101..., b = 0011... → xor = 0110...
        let out = aig.simulate(&[0b0101, 0b0011]);
        assert_eq!(out[0] & 0xF, 0b0110);
    }

    #[test]
    fn exhaustive_truth_table_of_xor() {
        let aig = xor_aig();
        let tts = aig.simulate_exhaustive();
        assert_eq!(tts[0][0], 0b0110);
    }

    #[test]
    fn exhaustive_matches_per_word_simulation_on_seven_inputs() {
        // 7 inputs → 128 patterns → 2 words; checks the multi-word path.
        let mut aig = Aig::new(7);
        let lits: Vec<Lit> = (0..7).map(|i| aig.pi(i)).collect();
        let conj = aig.and_many(&lits);
        let parity = lits[1..].iter().fold(lits[0], |acc, &l| aig.xor(acc, l));
        aig.add_po(conj);
        aig.add_po(parity);
        let tts = aig.simulate_exhaustive();
        // Conjunction is true only for the all-ones pattern (bit 127).
        assert_eq!(tts[0][0], 0);
        assert_eq!(tts[0][1], 1u64 << 63);
        // Parity of pattern index p is odd popcount.
        for p in 0..128usize {
            let expect = (p.count_ones() & 1) as u64;
            let got = tts[1][p / 64] >> (p % 64) & 1;
            assert_eq!(got, expect, "parity mismatch at pattern {p}");
        }
    }

    #[test]
    fn levels_and_depth() {
        let mut aig = Aig::new(3);
        let (a, b, c) = (aig.pi(0), aig.pi(1), aig.pi(2));
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        aig.add_po(abc);
        let levels = aig.levels();
        assert_eq!(levels[ab.var()], 1);
        assert_eq!(levels[abc.var()], 2);
        assert_eq!(aig.depth(), 2);
    }

    #[test]
    fn cleanup_drops_dangling_gates() {
        let mut aig = Aig::new(2);
        let (a, b) = (aig.pi(0), aig.pi(1));
        let keep = aig.and(a, b);
        let _dangling = aig.or(a, b);
        aig.add_po(keep);
        assert_eq!(aig.num_ands(), 2);
        let clean = aig.cleanup();
        assert_eq!(clean.num_ands(), 1);
        assert_eq!(
            clean.simulate(&[0b1100, 0b1010]),
            aig.simulate(&[0b1100, 0b1010])
        );
        clean.check().expect("clean AIG must be valid");
    }

    #[test]
    fn mffc_counts_exclusive_cone() {
        let mut aig = Aig::new(3);
        let (a, b, c) = (aig.pi(0), aig.pi(1), aig.pi(2));
        let ab = aig.and(a, b);
        let shared = aig.and(b, c);
        let top = aig.and(ab, shared);
        aig.add_po(top);
        aig.add_po(shared); // `shared` has an extra fanout → outside top's MFFC
        let mut refs = aig.fanout_counts();
        assert_eq!(aig.mffc_size(top.var(), &mut refs), 2); // top + ab
        assert_eq!(refs, aig.fanout_counts()); // restored
    }

    #[test]
    fn mux_and_maj_functions() {
        let mut aig = Aig::new(3);
        let (s, t, e) = (aig.pi(0), aig.pi(1), aig.pi(2));
        let m = aig.mux(s, t, e);
        let mj = aig.maj(s, t, e);
        aig.add_po(m);
        aig.add_po(mj);
        let tts = aig.simulate_exhaustive();
        for p in 0..8u64 {
            let (sv, tv, ev) = (p & 1, p >> 1 & 1, p >> 2 & 1);
            let mux_expect = if sv == 1 { tv } else { ev };
            let maj_expect = ((sv + tv + ev) >= 2) as u64;
            assert_eq!(tts[0][0] >> p & 1, mux_expect, "mux pattern {p}");
            assert_eq!(tts[1][0] >> p & 1, maj_expect, "maj pattern {p}");
        }
    }

    #[test]
    fn check_detects_duplicates() {
        let mut aig = Aig::new(2);
        let (a, b) = (aig.pi(0), aig.pi(1));
        let _x = aig.and(a, b);
        // Bypass strash to forge a duplicate.
        aig.nodes.push(Node {
            fanin0: a,
            fanin1: b,
        });
        assert!(matches!(
            aig.check(),
            Err(CheckAigError::DuplicateAnd { .. })
        ));
    }

    #[test]
    fn content_hash_tracks_structure_not_name() {
        let mut a = Aig::new(2);
        let (x, y) = (a.pi(0), a.pi(1));
        let g = a.and(x, y);
        a.add_po(g);
        let mut b = a.clone();
        b.set_name("renamed");
        assert_eq!(a.content_hash(), b.content_hash());
        // A complemented output is a different circuit.
        let mut c = a.clone();
        c.set_po(0, !g);
        assert_ne!(a.content_hash(), c.content_hash());
        // An extra gate is a different circuit.
        let mut d = a.clone();
        let h = d.or(x, y);
        d.add_po(h);
        assert_ne!(a.content_hash(), d.content_hash());
    }

    #[test]
    fn cone_collects_transitive_fanin() {
        let mut aig = Aig::new(3);
        let (a, b, c) = (aig.pi(0), aig.pi(1), aig.pi(2));
        let ab = aig.and(a, b);
        let bc = aig.and(b, c);
        let top = aig.and(ab, bc);
        aig.add_po(top);
        let cone = aig.cone(&[ab.var()]);
        assert!(cone.contains(&a.var()) && cone.contains(&b.var()) && cone.contains(&ab.var()));
        assert!(!cone.contains(&bc.var()) && !cone.contains(&top.var()));
    }
}
