//! Property-based tests for the AIG substrate: every random AIG must satisfy
//! the structural invariants, survive an AIGER round trip unchanged, and be
//! functionally invariant under cleanup.

use boils_aig::{random_aig, splitmix64, Aig, Lit, SimTable};
use proptest::prelude::*;

/// Deterministic pseudo-random pattern words for simulation tests.
fn pattern_words(seed: u64, pis: usize, words: usize) -> Vec<Vec<u64>> {
    let mut state = seed;
    (0..pis)
        .map(|_| {
            (0..words)
                .map(|_| {
                    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    splitmix64(state)
                })
                .collect()
        })
        .collect()
}

/// Structural identity (stronger than functional equivalence): same inputs,
/// same AND gates with the same fanin literals in the same arena order, same
/// output drivers. This is the property the persistent prefix store relies
/// on — a cache-restored intermediate AIG must be indistinguishable from the
/// one that was written, so every subsequently applied transform is
/// bit-identical.
fn assert_structurally_identical(a: &Aig, b: &Aig) {
    assert_eq!(a.num_pis(), b.num_pis(), "input count");
    assert_eq!(a.num_ands(), b.num_ands(), "gate count");
    assert_eq!(a.num_pos(), b.num_pos(), "output count");
    for var in a.ands() {
        assert_eq!(a.fanin0(var).raw(), b.fanin0(var).raw(), "fanin0 of {var}");
        assert_eq!(a.fanin1(var).raw(), b.fanin1(var).raw(), "fanin1 of {var}");
    }
    for (i, (pa, pb)) in a.pos().iter().zip(b.pos()).enumerate() {
        assert_eq!(pa.raw(), pb.raw(), "output {i}");
    }
    assert_eq!(a.content_hash(), b.content_hash());
}

/// `write → read → write` for the binary codec: the parsed AIG must be
/// structurally identical and the second serialisation byte-stable.
fn binary_round_trip(aig: &Aig) -> Aig {
    let mut first = Vec::new();
    aig.write_aig_binary(&mut first).expect("in-memory write");
    let back = Aig::read_aig_binary(first.as_slice()).expect("parse back");
    assert_structurally_identical(aig, &back);
    assert_eq!(back.name(), aig.name());
    let mut second = Vec::new();
    back.write_aig_binary(&mut second).expect("rewrite");
    assert_eq!(first, second, "binary serialisation is not byte-stable");
    back
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_aigs_satisfy_invariants(
        seed in 0u64..10_000,
        pis in 1usize..10,
        gates in 0usize..200,
        pos in 1usize..5,
    ) {
        let aig = random_aig(seed, pis, gates, pos);
        prop_assert!(aig.check().is_ok());
        prop_assert_eq!(aig.num_pis(), pis);
        prop_assert_eq!(aig.num_pos(), pos);
    }

    #[test]
    fn cleanup_preserves_function(
        seed in 0u64..10_000,
        pis in 1usize..9,
        gates in 0usize..150,
    ) {
        let aig = random_aig(seed, pis, gates, 3);
        let clean = aig.cleanup();
        prop_assert!(clean.check().is_ok());
        prop_assert!(clean.num_ands() <= aig.num_ands());
        prop_assert_eq!(clean.simulate_exhaustive(), aig.simulate_exhaustive());
    }

    #[test]
    fn aiger_round_trip_preserves_function(
        seed in 0u64..10_000,
        pis in 1usize..9,
        gates in 0usize..150,
    ) {
        let aig = random_aig(seed, pis, gates, 2);
        let mut buf = Vec::new();
        aig.write_aag(&mut buf).expect("in-memory write");
        let back = Aig::read_aag(buf.as_slice()).expect("parse back");
        prop_assert!(back.check().is_ok());
        prop_assert_eq!(back.simulate_exhaustive(), aig.simulate_exhaustive());
    }

    #[test]
    fn binary_codec_round_trip_is_structurally_stable(
        seed in 0u64..10_000,
        pis in 1usize..9,
        gates in 0usize..150,
        pos in 1usize..5,
    ) {
        // Dangling gates included on purpose: intermediate AIGs cached by
        // the persistent store are written exactly as the transforms left
        // them, so the codec must preserve unreachable gates too.
        let aig = random_aig(seed, pis, gates, pos);
        let back = binary_round_trip(&aig);
        prop_assert!(back.check().is_ok());
        prop_assert_eq!(back.simulate_exhaustive(), aig.simulate_exhaustive());
    }

    #[test]
    fn ascii_codec_round_trip_is_structurally_stable(
        seed in 0u64..10_000,
        pis in 1usize..9,
        gates in 0usize..150,
    ) {
        let aig = random_aig(seed, pis, gates, 3);
        let mut first = Vec::new();
        aig.write_aag(&mut first).expect("in-memory write");
        let back = Aig::read_aag(first.as_slice()).expect("parse back");
        assert_structurally_identical(&aig, &back);
        let mut second = Vec::new();
        back.write_aag(&mut second).expect("rewrite");
        prop_assert_eq!(first, second);
    }

    #[test]
    fn word_simulation_matches_exhaustive(
        seed in 0u64..10_000,
        gates in 0usize..120,
    ) {
        // 6 inputs → the 64 exhaustive patterns fit exactly in one u64 word,
        // so simulate() with the canonical masks must equal the truth table.
        let aig = random_aig(seed, 6, gates, 2);
        let pi_words: Vec<u64> =
            (0..6).map(|i| boils_aig::input_pattern(i, 1)[0]).collect();
        let words = aig.simulate(&pi_words);
        let tts = aig.simulate_exhaustive();
        for (w, tt) in words.iter().zip(&tts) {
            prop_assert_eq!(*w, tt[0]);
        }
    }

    #[test]
    fn flat_sim_table_matches_legacy_node_simulation(
        seed in 0u64..10_000,
        pis in 1usize..9,
        gates in 0usize..150,
        words in 1usize..5,
        pat_seed in any::<u64>(),
    ) {
        let aig = random_aig(seed, pis, gates, 2);
        let pi_words = pattern_words(pat_seed, pis, words);
        // Independent oracle: the pre-SimTable per-node layout, computed
        // gate by gate exactly as the legacy simulate_nodes did.
        let mut legacy = vec![vec![0u64; words]; aig.num_nodes()];
        for (i, row) in pi_words.iter().enumerate() {
            legacy[1 + i].copy_from_slice(row);
        }
        for var in aig.ands() {
            let (f0, f1) = (aig.fanin0(var), aig.fanin1(var));
            let (m0, m1) = (
                if f0.is_complement() { !0u64 } else { 0 },
                if f1.is_complement() { !0u64 } else { 0 },
            );
            legacy[var] = (0..words)
                .map(|w| (legacy[f0.var()][w] ^ m0) & (legacy[f1.var()][w] ^ m1))
                .collect();
        }
        let table = SimTable::from_patterns(&aig, &pi_words, words);
        let wrapper = aig.simulate_nodes(&pi_words, words);
        for v in 0..aig.num_nodes() {
            prop_assert_eq!(table.row(v), &legacy[v][..], "flat row of node {}", v);
            prop_assert_eq!(&wrapper[v], &legacy[v], "wrapper row of node {}", v);
        }
    }

    #[test]
    fn incremental_append_matches_from_scratch_simulation(
        seed in 0u64..10_000,
        pis in 1usize..8,
        gates in 0usize..150,
        first in 1usize..3,
        second in 1usize..3,
        pat_seed in any::<u64>(),
        cex_seed in any::<u64>(),
    ) {
        let aig = random_aig(seed, pis, gates, 2);
        let all = pattern_words(pat_seed, pis, first + second);
        let head: Vec<Vec<u64>> = all.iter().map(|r| r[..first].to_vec()).collect();
        let tail: Vec<Vec<u64>> = all.iter().map(|r| r[first..].to_vec()).collect();

        // Whole words appended incrementally = one-shot simulation.
        let mut incremental = SimTable::from_patterns(&aig, &head, first);
        incremental.append_pattern_words(&aig, &tail);
        let scratch = SimTable::from_patterns(&aig, &all, first + second);
        for v in 0..aig.num_nodes() {
            prop_assert_eq!(incremental.row(v), scratch.row(v), "node {}", v);
        }

        // Single-pattern counterexamples packed into partial words agree
        // with plain per-pattern simulation of the same assignments.
        let cexes: Vec<Vec<bool>> = (0..5)
            .map(|j| {
                (0..pis)
                    .map(|i| splitmix64(cex_seed ^ (j * 131 + i) as u64) & 1 == 1)
                    .collect()
            })
            .collect();
        let base_bits = incremental.num_bits();
        incremental.append_counterexamples(&aig, &cexes);
        prop_assert_eq!(incremental.num_bits(), base_bits + 5);
        for (j, cex) in cexes.iter().enumerate() {
            let inputs: Vec<u64> = cex.iter().map(|&v| v as u64).collect();
            let outs = aig.simulate(&inputs);
            for (o, &po) in aig.pos().iter().enumerate() {
                prop_assert_eq!(
                    incremental.lit_value(po, base_bits + j),
                    outs[o] & 1 == 1,
                    "output {} of cex {}", o, j
                );
            }
        }
    }

    #[test]
    fn depth_is_monotone_under_cleanup(
        seed in 0u64..10_000,
        gates in 0usize..150,
    ) {
        let aig = random_aig(seed, 7, gates, 2);
        // Cleanup never increases depth: it only removes dangling gates.
        prop_assert!(aig.cleanup().depth() <= aig.depth());
    }

    #[test]
    fn mffc_bounded_by_and_count(
        seed in 0u64..10_000,
        gates in 1usize..150,
    ) {
        let aig = random_aig(seed, 6, gates, 2);
        let mut refs = aig.fanout_counts();
        let before = refs.clone();
        for var in aig.ands() {
            let m = aig.mffc_size(var, &mut refs);
            prop_assert!(m >= 1);
            prop_assert!(m <= aig.num_ands());
        }
        // Fanout counts must be fully restored.
        prop_assert_eq!(refs, before);
    }
}

// Codec edge cases the random generator rarely (or never) produces.

#[test]
fn binary_codec_handles_an_aig_with_zero_ands() {
    let mut aig = Aig::new(3);
    let wire = aig.pi(1);
    aig.add_po(wire);
    aig.add_po(!wire);
    assert_eq!(aig.num_ands(), 0);
    binary_round_trip(&aig);
}

#[test]
fn binary_codec_handles_constant_outputs() {
    let mut aig = Aig::new(1);
    aig.add_po(Lit::FALSE);
    aig.add_po(Lit::TRUE);
    binary_round_trip(&aig);
}

#[test]
fn binary_codec_handles_a_single_output() {
    let mut aig = Aig::new(2);
    let g = aig.and(aig.pi(0), aig.pi(1));
    aig.add_po(g);
    aig.set_name("and2");
    let back = binary_round_trip(&aig);
    assert_eq!(back.name(), "and2");
}

#[test]
fn binary_header_declares_no_latches() {
    // The combinational subset is all the store ever serialises; the
    // header's latch field must always be zero so readers (ours and
    // external AIGER tools) never see dangling latch declarations.
    let aig = random_aig(9, 5, 60, 2);
    let mut buf = Vec::new();
    aig.write_aig_binary(&mut buf).expect("write");
    let header = String::from_utf8_lossy(buf.split(|&b| b == b'\n').next().expect("header"));
    let fields: Vec<&str> = header.split_whitespace().collect();
    assert_eq!(fields[0], "aig");
    assert_eq!(fields[3], "0", "latch count must be zero: {header}");
}
