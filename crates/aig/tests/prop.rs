//! Property-based tests for the AIG substrate: every random AIG must satisfy
//! the structural invariants, survive an AIGER round trip unchanged, and be
//! functionally invariant under cleanup.

use boils_aig::{random_aig, Aig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_aigs_satisfy_invariants(
        seed in 0u64..10_000,
        pis in 1usize..10,
        gates in 0usize..200,
        pos in 1usize..5,
    ) {
        let aig = random_aig(seed, pis, gates, pos);
        prop_assert!(aig.check().is_ok());
        prop_assert_eq!(aig.num_pis(), pis);
        prop_assert_eq!(aig.num_pos(), pos);
    }

    #[test]
    fn cleanup_preserves_function(
        seed in 0u64..10_000,
        pis in 1usize..9,
        gates in 0usize..150,
    ) {
        let aig = random_aig(seed, pis, gates, 3);
        let clean = aig.cleanup();
        prop_assert!(clean.check().is_ok());
        prop_assert!(clean.num_ands() <= aig.num_ands());
        prop_assert_eq!(clean.simulate_exhaustive(), aig.simulate_exhaustive());
    }

    #[test]
    fn aiger_round_trip_preserves_function(
        seed in 0u64..10_000,
        pis in 1usize..9,
        gates in 0usize..150,
    ) {
        let aig = random_aig(seed, pis, gates, 2);
        let mut buf = Vec::new();
        aig.write_aag(&mut buf).expect("in-memory write");
        let back = Aig::read_aag(buf.as_slice()).expect("parse back");
        prop_assert!(back.check().is_ok());
        prop_assert_eq!(back.simulate_exhaustive(), aig.simulate_exhaustive());
    }

    #[test]
    fn word_simulation_matches_exhaustive(
        seed in 0u64..10_000,
        gates in 0usize..120,
    ) {
        // 6 inputs → the 64 exhaustive patterns fit exactly in one u64 word,
        // so simulate() with the canonical masks must equal the truth table.
        let aig = random_aig(seed, 6, gates, 2);
        let pi_words: Vec<u64> =
            (0..6).map(|i| boils_aig::input_pattern(i, 1)[0]).collect();
        let words = aig.simulate(&pi_words);
        let tts = aig.simulate_exhaustive();
        for (w, tt) in words.iter().zip(&tts) {
            prop_assert_eq!(*w, tt[0]);
        }
    }

    #[test]
    fn depth_is_monotone_under_cleanup(
        seed in 0u64..10_000,
        gates in 0usize..150,
    ) {
        let aig = random_aig(seed, 7, gates, 2);
        // Cleanup never increases depth: it only removes dangling gates.
        prop_assert!(aig.cleanup().depth() <= aig.depth());
    }

    #[test]
    fn mffc_bounded_by_and_count(
        seed in 0u64..10_000,
        gates in 1usize..150,
    ) {
        let aig = random_aig(seed, 6, gates, 2);
        let mut refs = aig.fanout_counts();
        let before = refs.clone();
        for var in aig.ands() {
            let m = aig.mffc_size(var, &mut refs);
            prop_assert!(m >= 1);
            prop_assert!(m <= aig.num_ands());
        }
        // Fanout counts must be fully restored.
        prop_assert_eq!(refs, before);
    }
}
