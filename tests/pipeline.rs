//! End-to-end integration: circuits → synthesis → mapping → QoR → search.

use boils::baselines::random_search;
use boils::circuits::{Benchmark, CircuitSpec};
use boils::core::{Boils, BoilsConfig, QorEvaluator, SequenceSpace};
use boils::gp::TrainConfig;
use boils::mapper::{map_stats, MapperConfig};
use boils::synth::{resyn2, Transform};

#[test]
fn resyn2_improves_every_benchmark() {
    for b in Benchmark::ALL {
        // Small widths keep this fast while exercising every generator.
        let aig = CircuitSpec::new(b).build();
        let opt = resyn2(&aig);
        assert!(
            opt.num_ands() <= aig.num_ands(),
            "{b}: resyn2 grew the graph"
        );
        let before = map_stats(&aig, &MapperConfig::default());
        let after = map_stats(&opt, &MapperConfig::default());
        assert!(after.luts > 0, "{b}: degenerate mapping");
        // resyn2 should never be drastically worse on area.
        assert!(
            after.luts <= before.luts * 2,
            "{b}: mapping exploded {} -> {}",
            before.luts,
            after.luts
        );
    }
}

#[test]
fn qor_evaluator_is_consistent_with_manual_pipeline() {
    let aig = CircuitSpec::new(Benchmark::SquareRoot).build();
    let evaluator = QorEvaluator::new(&aig).expect("ok");
    let seq = [Transform::Balance, Transform::Rewrite, Transform::Fraig];
    let point = evaluator.evaluate(&seq);
    // Recompute by hand.
    let mut manual = aig.clone();
    for t in seq {
        manual = t.apply(&manual);
    }
    let stats = map_stats(&manual, &MapperConfig::default());
    let reference = evaluator.reference();
    let expect =
        stats.luts as f64 / reference.luts as f64 + stats.levels as f64 / reference.levels as f64;
    assert!((point.qor - expect).abs() < 1e-12);
    assert_eq!(point.area, stats.luts);
    assert_eq!(point.delay, stats.levels);
}

#[test]
fn boils_run_is_no_worse_than_its_initial_design() {
    let aig = CircuitSpec::new(Benchmark::BarrelShifter).build();
    let evaluator = QorEvaluator::new(&aig).expect("ok");
    let mut boils = Boils::new(BoilsConfig {
        max_evaluations: 16,
        initial_samples: 8,
        space: SequenceSpace::new(8, 11),
        train: TrainConfig {
            steps: 5,
            ..TrainConfig::default()
        },
        seed: 5,
        ..BoilsConfig::default()
    });
    let result = boils.run(&evaluator).expect("run");
    let init_best = result.history[..8]
        .iter()
        .map(|r| r.point.qor)
        .fold(f64::INFINITY, f64::min);
    assert!(result.best_qor <= init_best);
    // The optimiser must act on the same evaluator cache it was handed.
    assert!(evaluator.num_evaluations() <= 16);
}

#[test]
fn boils_is_competitive_with_random_search_at_equal_budget() {
    // A smoke-level version of the paper's headline claim. One seed, small
    // budget — we assert BOiLS is at least on par (small tolerance), not
    // the full statistical result (see EXPERIMENTS.md for that).
    let aig = CircuitSpec::new(Benchmark::Max).build();
    let evaluator = QorEvaluator::new(&aig).expect("ok");
    let space = SequenceSpace::new(10, 11);
    let budget = 18;
    let rs = random_search(&evaluator, space, budget, 1, 1);
    let mut boils = Boils::new(BoilsConfig {
        max_evaluations: budget,
        initial_samples: 6,
        space,
        train: TrainConfig {
            steps: 5,
            ..TrainConfig::default()
        },
        seed: 1,
        ..BoilsConfig::default()
    });
    let bo = boils.run(&evaluator).expect("run");
    assert!(
        bo.best_qor <= rs.best_qor + 0.05,
        "BOiLS ({:.4}) far behind RS ({:.4})",
        bo.best_qor,
        rs.best_qor
    );
}

#[test]
fn improvement_reporting_matches_paper_scale() {
    // A sequence at least as good as resyn2 must report non-negative
    // improvement; the empty sequence is typically worse (negative).
    let aig = CircuitSpec::new(Benchmark::Square).build();
    let evaluator = QorEvaluator::new(&aig).expect("ok");
    let resyn2_like = [
        Transform::Balance,
        Transform::Rewrite,
        Transform::Refactor,
        Transform::Balance,
        Transform::Rewrite,
        Transform::RewriteZ,
        Transform::Balance,
        Transform::RefactorZ,
        Transform::RewriteZ,
        Transform::Balance,
    ];
    let p = evaluator.evaluate(&resyn2_like);
    assert!(
        p.improvement_percent().abs() < 1e-9,
        "resyn2 is the zero point"
    );
}
