//! Cross-crate interop: AIGER round trips of real benchmarks, SAT
//! equivalence of parsed circuits, and determinism of the optimisers.

use boils::aig::Aig;
use boils::baselines::{genetic_algorithm, random_search, GaConfig};
use boils::circuits::{Benchmark, CircuitSpec};
use boils::core::{QorEvaluator, SequenceSpace};
use boils::sat::{check_equivalence, EquivResult};

#[test]
fn benchmarks_round_trip_through_aiger() {
    for b in [Benchmark::Adder, Benchmark::Max, Benchmark::Log2] {
        let spec = CircuitSpec::new(b).bits(match b {
            Benchmark::Log2 => 5,
            _ => 6,
        });
        let aig = spec.build();
        let mut buf = Vec::new();
        aig.write_aag(&mut buf).expect("serialise");
        let back = Aig::read_aag(buf.as_slice()).expect("parse");
        assert_eq!(back.num_pis(), aig.num_pis());
        assert_eq!(back.num_pos(), aig.num_pos());
        assert_eq!(
            check_equivalence(&aig, &back, Some(100_000)),
            EquivResult::Equivalent,
            "{b}: AIGER round trip changed the function"
        );
    }
}

#[test]
fn optimisers_are_deterministic_across_processes() {
    // Two fresh evaluators (separate caches) must reproduce identical runs
    // for identical seeds — the property that makes EXPERIMENTS.md
    // reproducible.
    let aig = CircuitSpec::new(Benchmark::Square).bits(5).build();
    let space = SequenceSpace::new(6, 11);
    let (e1, e2) = (
        QorEvaluator::new(&aig).expect("ok"),
        QorEvaluator::new(&aig).expect("ok"),
    );
    // Different thread counts on purpose: the trajectory must not depend
    // on the evaluation engine's parallelism.
    let a = random_search(&e1, space, 10, 3, 1);
    let b = random_search(&e2, space, 10, 3, 4);
    assert_eq!(a.best_tokens, b.best_tokens);
    assert_eq!(a.best_qor, b.best_qor);

    let g1 = genetic_algorithm(
        &e1,
        space,
        16,
        &GaConfig {
            seed: 9,
            ..GaConfig::default()
        },
    );
    let g2 = genetic_algorithm(
        &e2,
        space,
        16,
        &GaConfig {
            seed: 9,
            ..GaConfig::default()
        },
    );
    assert_eq!(g1.best_tokens, g2.best_tokens);
}

#[test]
fn shared_evaluator_caches_across_methods() {
    let aig = CircuitSpec::new(Benchmark::Square).bits(5).build();
    let evaluator = QorEvaluator::new(&aig).expect("ok");
    let space = SequenceSpace::new(6, 11);
    let _ = random_search(&evaluator, space, 10, 0, 1);
    let unique_after_rs = evaluator.num_evaluations();
    let hits_after_rs = evaluator.cache_hits();
    // Replaying the same method hits the cache for every sequence.
    let _ = random_search(&evaluator, space, 10, 0, 1);
    assert_eq!(evaluator.num_evaluations(), unique_after_rs);
    assert!(evaluator.cache_hits() >= hits_after_rs + 10);
}
