//! Integration tests for the `boils` command-line tool, driving the real
//! binary end to end through temp files.

use std::process::Command;

fn boils() -> Command {
    Command::new(env!("CARGO_BIN_EXE_boils"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("boils-cli-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

#[test]
fn generate_stats_synth_check_round_trip() {
    let aag = tmp("rt.aag");
    let opt = tmp("rt_opt.aig");

    let out = boils()
        .args(["generate", "--circuit", "square", "--bits", "5", "--output"])
        .arg(&aag)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = boils()
        .args(["stats", "--input"])
        .arg(&aag)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("square_5"), "stats output: {text}");
    assert!(text.contains("if -K 6"));

    let out = boils()
        .args(["synth", "--input"])
        .arg(&aag)
        .args(["--ops", "balance;rewrite;resub", "--output"])
        .arg(&opt)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = boils()
        .args(["check", "--golden"])
        .arg(&aag)
        .arg("--revised")
        .arg(&opt)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("EQUIVALENT"));
}

#[test]
fn check_detects_inequivalence() {
    let a = tmp("neq_a.aag");
    let b = tmp("neq_b.aag");
    for (path, circuit) in [(&a, "adder"), (&b, "square")] {
        let out = boils()
            .args(["generate", "--circuit", circuit, "--bits", "4", "--output"])
            .arg(path)
            .output()
            .expect("spawn");
        assert!(out.status.success());
    }
    // adder(4) and square(4) even have the same PI count (8) — but they
    // differ in PO count, so `check` must fail cleanly either way.
    let out = boils()
        .args(["check", "--golden"])
        .arg(&a)
        .arg("--revised")
        .arg(&b)
        .output()
        .expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn optimize_runs_a_small_budget() {
    let out = boils()
        .args([
            "optimize",
            "--circuit",
            "bar",
            "--bits",
            "8",
            "--budget",
            "12",
            "--k",
            "6",
            "--method",
            "rs",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("best cost"), "output: {text}");
    assert!(text.contains("vs resyn2"), "output: {text}");
    assert!(text.contains("objective     : qor"), "output: {text}");
    assert!(text.contains("evaluations   : 12"));
}

#[test]
fn optimize_with_a_surrogate_window_reports_the_lifecycle() {
    let out = boils()
        .args([
            "optimize",
            "--circuit",
            "max",
            "--bits",
            "4",
            "--budget",
            "14",
            "--k",
            "5",
            "--method",
            "boils",
            "--surrogate-window",
            "6",
            "--seed",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("evaluations   : 14"), "output: {text}");
    // The surrogate stats line carries the window and the lifecycle
    // counters, including the extend-fallback count.
    assert!(text.contains("surrogate     : window 6"), "output: {text}");
    assert!(text.contains("downdates"), "output: {text}");
    assert!(text.contains("fallback refits"), "output: {text}");
    // A malformed window is rejected with the flag's name.
    let bad = boils()
        .args([
            "optimize",
            "--circuit",
            "max",
            "--bits",
            "4",
            "--budget",
            "6",
            "--surrogate-window",
            "lots",
        ])
        .output()
        .expect("spawn");
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("--surrogate-window"));
}

#[test]
fn optimize_with_a_cache_dir_is_bit_identical_across_processes() {
    let cache = tmp("persist-cache");
    let _ = std::fs::remove_dir_all(&cache);
    let run = || {
        let out = boils()
            .args([
                "optimize",
                "--circuit",
                "max",
                "--bits",
                "4",
                "--k",
                "5",
                "--method",
                "greedy",
                "--budget",
                "22",
                "--cache-dir",
            ])
            .arg(&cache)
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let cold = run();
    assert!(cold.contains("cache dir"), "output: {cold}");
    let warm = run();
    let best = |text: &str| {
        text.lines()
            .find(|l| l.starts_with("best cost"))
            .expect("best cost line")
            .to_string()
    };
    // A separate warmed process reproduces the cold run exactly and
    // actually used the disk tier.
    assert_eq!(best(&cold), best(&warm));
    assert!(
        !warm.contains("(0 disk hits"),
        "warm process never read the store: {warm}"
    );
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn switching_the_objective_reuses_the_warm_store() {
    let cache = tmp("objective-cache");
    let _ = std::fs::remove_dir_all(&cache);
    let run = |objective: &str| {
        let out = boils()
            .args([
                "optimize",
                "--circuit",
                "max",
                "--bits",
                "4",
                "--k",
                "5",
                "--method",
                "greedy",
                "--budget",
                "22",
                "--objective",
                objective,
                "--cache-dir",
            ])
            .arg(&cache)
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    // Cold run under Eq. 1 QoR fills the store; the re-run with a
    // different cost function replays the same greedy frontier and must
    // find every synthesis result already on disk — the cache is keyed on
    // cost-fn-independent synthesis stats.
    let cold = run("qor");
    assert!(cold.contains("objective     : qor"), "output: {cold}");
    let warm = run("lut");
    assert!(warm.contains("objective     : lut"), "output: {warm}");
    assert!(
        !warm.contains("(0 disk hits"),
        "lut re-run never read the store warmed by the qor run: {warm}"
    );
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn multi_objective_mode_prints_the_pareto_front() {
    let out = boils()
        .args([
            "optimize",
            "--circuit",
            "max",
            "--bits",
            "4",
            "--budget",
            "10",
            "--k",
            "5",
            "--method",
            "boils",
            "--mo",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("(multi-objective)"), "output: {text}");
    assert!(text.contains("pareto front"), "output: {text}");
    assert!(text.contains("nondominated point(s)"), "output: {text}");
}

#[test]
fn serve_and_submit_run_a_mixed_batch_end_to_end() {
    use std::io::BufRead;
    // Port 0 lets the OS pick; the daemon prints the resolved address.
    let mut server = boils()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut banner = String::new();
    std::io::BufReader::new(server.stdout.take().expect("piped stdout"))
        .read_line(&mut banner)
        .expect("read listen banner");
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .expect("listen banner")
        .to_string();

    // A mixed-objective batch on one circuit: the jobs share the
    // daemon's synthesis tiers, so combined unique work stays at the
    // number of distinct sequences while every job sees a full history.
    let jobs = tmp("daemon-batch.jsonl");
    std::fs::write(
        &jobs,
        concat!(
            r#"{"op":"submit","circuit":"adder","bits":4,"method":"rs","budget":6,"k":6,"seed":5,"objective":"qor"}"#,
            "\n",
            r#"{"op":"submit","circuit":"adder","bits":4,"method":"rs","budget":6,"k":6,"seed":5,"objective":"lut","priority":"high"}"#,
            "\n",
        ),
    )
    .expect("write batch");
    let out = boils()
        .args(["submit", "--addr", &addr, "--jobs"])
        .arg(&jobs)
        .output()
        .expect("spawn submit");
    assert!(
        out.status.success(),
        "submit failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let events = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        events.matches("\"event\":\"finished\"").count(),
        2,
        "{events}"
    );
    assert!(
        events.contains("\"termination\":\"budget-exhausted\""),
        "{events}"
    );
    // Exact attribution across the two tenants: 6 distinct sequences,
    // 12 history entries, so shared hits make up the other 6.
    let mut unique = 0u64;
    let mut shared = 0u64;
    for line in events.lines().filter(|l| l.contains("\"finished\"")) {
        let grab = |key: &str| -> u64 {
            let at = line.find(key).unwrap_or_else(|| panic!("{key} in {line}"));
            line[at + key.len()..]
                .trim_start_matches(':')
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .expect("counter")
        };
        unique += grab("\"unique_evaluations\"");
        shared += grab("\"shared_hits\"");
    }
    assert!(
        unique <= 6,
        "sharing failed: {unique} unique, events {events}"
    );
    assert_eq!(unique + shared, 12, "{events}");

    // A malformed job in a batch is rejected with a diagnostic (nonzero
    // exit) while the daemon keeps serving.
    let bad = tmp("daemon-bad.jsonl");
    std::fs::write(
        &bad,
        "{\"op\":\"submit\",\"circuit\":\"bogus\",\"method\":\"rs\",\"budget\":2}\n",
    )
    .expect("write batch");
    let out = boils()
        .args(["submit", "--addr", &addr, "--jobs"])
        .arg(&bad)
        .output()
        .expect("spawn submit");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("unknown circuit"),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));

    // Malformed submit flags fail locally with the daemon's diagnostic.
    let out = boils()
        .args([
            "submit",
            "--addr",
            &addr,
            "--circuit",
            "adder",
            "--method",
            "rs",
            "--budget",
            "lots",
        ])
        .output()
        .expect("spawn submit");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--budget"));

    // One last job proves the daemon survived the bad batch, then stops it.
    let out = boils()
        .args([
            "submit",
            "--addr",
            &addr,
            "--circuit",
            "adder",
            "--bits",
            "4",
            "--method",
            "greedy",
            "--budget",
            "100000",
            "--k",
            "6",
            "--deadline-secs",
            "0.3",
            "--shutdown",
        ])
        .output()
        .expect("spawn submit");
    assert!(
        out.status.success(),
        "submit failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("\"termination\":\"deadline-exceeded\""),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let status = server.wait().expect("server exits after shutdown");
    assert!(status.success());
}

#[test]
fn unknown_flags_and_circuits_fail_gracefully() {
    let out = boils()
        .args(["generate", "--circuit", "mystery", "--output", "/tmp/x.aag"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown circuit"));

    let out = boils().args(["help"]).output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
