//! The global soundness gate: every synthesis transform preserves the
//! function of every benchmark circuit — checked by 4096-pattern random
//! simulation on all ten benchmarks plus full SAT equivalence on the
//! smaller ones.

use boils::circuits::{Benchmark, CircuitSpec};
use boils::sat::{check_equivalence, EquivResult};
use boils::synth::Transform;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_sim_equal(a: &boils::aig::Aig, b: &boils::aig::Aig, words: usize, seed: u64) -> bool {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..words {
        let inputs: Vec<u64> = (0..a.num_pis()).map(|_| rng.gen()).collect();
        if a.simulate(&inputs) != b.simulate(&inputs) {
            return false;
        }
    }
    true
}

#[test]
fn all_transforms_preserve_all_benchmarks_by_simulation() {
    for b in Benchmark::ALL {
        // Reduced widths keep the full 10×11 matrix affordable.
        let bits = (b.default_bits() / 2).max(4);
        let spec = match b {
            Benchmark::BarrelShifter => CircuitSpec::new(b).bits(bits.next_power_of_two()),
            Benchmark::SquareRoot => CircuitSpec::new(b).bits(bits + bits % 2),
            _ => CircuitSpec::new(b).bits(bits),
        };
        let aig = spec.build();
        for t in Transform::ALL {
            let out = t.apply(&aig);
            assert!(
                random_sim_equal(&aig, &out, 64, 0xB0115),
                "{t} broke {b} ({} bits): 4096 random patterns disagree",
                spec.num_bits()
            );
            out.check().expect("structurally valid");
        }
    }
}

#[test]
fn transforms_on_small_benchmarks_pass_sat_equivalence() {
    // Exhaustive proof (CDCL miter) on down-scaled instances of four
    // structurally distinct benchmarks.
    let specs = [
        CircuitSpec::new(Benchmark::Adder).bits(6),
        CircuitSpec::new(Benchmark::Multiplier).bits(4),
        CircuitSpec::new(Benchmark::Divisor).bits(4),
        CircuitSpec::new(Benchmark::Sine).bits(6),
    ];
    for spec in specs {
        let aig = spec.build();
        for t in Transform::ALL {
            let out = t.apply(&aig);
            assert_eq!(
                check_equivalence(&aig, &out, Some(200_000)),
                EquivResult::Equivalent,
                "{t} failed SAT equivalence on {}",
                aig.name()
            );
        }
    }
}

#[test]
fn sequences_compose_without_losing_equivalence() {
    let aig = CircuitSpec::new(Benchmark::Hypotenuse).bits(4).build();
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..3 {
        let seq: Vec<Transform> = (0..8)
            .map(|_| Transform::from_index(rng.gen_range(0..11)))
            .collect();
        let out = boils::synth::apply_sequence(&aig, &seq);
        assert!(
            random_sim_equal(&aig, &out, 64, 7),
            "sequence {seq:?} broke the circuit"
        );
    }
}
