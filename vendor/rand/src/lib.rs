//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`) and [`rngs::StdRng`].
//!
//! The build environment has no access to crates.io, so this crate replaces
//! the registry dependency via a workspace path. The generator is
//! xoshiro256++ seeded through SplitMix64 — high-quality, fast, and fully
//! deterministic for a given seed, which is all the reproduction needs
//! (sampling, Latin hypercubes, policy rollouts). It intentionally does
//! *not* promise the same stream as upstream `rand`'s `StdRng`.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits to a uniform float in `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Lemire-style widening multiply keeps the draw unbiased
                // enough for sampling purposes and fully deterministic.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range range");
                let span = (end as u128) - (start as u128) + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                start + hi
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

float_range!(f32, f64);

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64 (Blackman & Vigna), deterministic per seed.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn every_bucket_is_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 11];
        for _ in 0..2000 {
            seen[rng.gen_range(0..11usize)] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
