//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the [`proptest!`] macro with `in`-strategy arguments and a
//! `proptest_config` attribute, range / tuple / `any` / `collection::vec`
//! strategies, and the `prop_assert*` macros.
//!
//! The build environment has no access to crates.io, so this crate replaces
//! the registry dependency via a workspace path. Unlike upstream proptest it
//! does not shrink failing inputs — it reports the failing case's values and
//! its case index so a failure is still reproducible (cases are generated
//! from a fixed per-test seed).

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A failed property within a [`proptest!`] case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

/// Result type of a single property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Arbitrary-value strategies (`any::<T>()`).
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.gen()
    }
}

/// Strategy produced by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T` (subset of proptest's `any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for [`vec()`]: a subset of proptest's `SizeRange`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The `proptest::prelude::prop` namespace.
pub mod prop {
    pub use crate::collection;
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Runs one named property over `cases` random inputs. Used by the
/// [`proptest!`] macro expansion; not part of the public proptest API.
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    // Stable per-test seed: failures reproduce without a persistence file.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case_index in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(hash ^ u64::from(case_index));
        if let Err(e) = case(&mut rng) {
            panic!("property {test_name} failed at case {case_index}: {e}");
        }
    }
}

/// Defines property tests: a subset of proptest's macro of the same name
/// supporting `#![proptest_config(...)]` and `pattern in strategy` argument
/// lists on `#[test]` functions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(#[test] fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!(a, b)` with an optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// `prop_assert_ne!(a, b)` with an optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vectors(
            n in 1usize..10,
            xs in prop::collection::vec(0u8..11, 0..8),
            pair in (0usize..4, any::<bool>()),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(xs.len() < 8);
            prop_assert!(xs.iter().all(|&x| x < 11));
            prop_assert!(pair.0 < 4);
            if n == 0 {
                // Early returns must type-check inside the case closure.
                return Ok(());
            }
            prop_assert_eq!(n, n);
            prop_assert_ne!(n, n + 1);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_case_index() {
        crate::run_cases(
            "always_fails",
            &ProptestConfig::with_cases(3),
            |_rng| -> TestCaseResult { Err(crate::TestCaseError::fail("nope")) },
        );
    }
}
