//! Offline stand-in for the subset of the `criterion` API this workspace's
//! benchmarks use: [`Criterion`], `bench_function`, `bench_with_input`,
//! `benchmark_group`, [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The build environment has no access to crates.io, so this crate replaces
//! the registry dependency via a workspace path. It measures a fixed number
//! of timed iterations after a short warm-up and reports the median
//! per-iteration wall time — no statistics, plots or baselines, but enough
//! to compare hot paths between commits by eye.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed samples per benchmark (upstream default is 100; this
/// stand-in keeps runs quick since it does no outlier rejection anyway).
const DEFAULT_SAMPLES: usize = 12;

/// A named benchmark id (`BenchmarkId::new("name", parameter)`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// The per-benchmark timing driver passed to `bench_function` closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last run, filled by [`Bencher::iter`].
    last_median: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, recording the median per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call (also forces lazy initialisation).
        black_box(routine());
        // Calibrate the per-sample iteration count to ~1ms, capped so very
        // slow routines still take one iteration per sample.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let mut medians: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            medians.push(start.elapsed() / iters as u32);
        }
        medians.sort();
        self.last_median = Some(medians[medians.len() / 2]);
    }
}

/// A group of related benchmarks (subset of criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    /// The parent's sample count before the group overrode it; restored on
    /// drop so an override never leaks past the group's scope.
    saved_samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.samples = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_named(&full, f);
        self
    }

    /// Ends the group (restoration itself happens on drop, as in upstream
    /// criterion, so a group dropped without `finish()` behaves the same).
    pub fn finish(&mut self) {}
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        self.criterion.samples = self.saved_samples;
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    fn run_named<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        // `cargo test` runs harness-less bench binaries too; skip the timed
        // loop there (criterion proper does the same under `--test`).
        if std::env::args().any(|a| a == "--test") {
            println!("{name:<40} skipped (test mode)");
            return;
        }
        let mut bencher = Bencher {
            samples: self.samples,
            last_median: None,
        };
        f(&mut bencher);
        match bencher.last_median {
            Some(median) => println!("{name:<40} median {median:>12.3?}/iter"),
            None => println!("{name:<40} no measurement recorded"),
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        self.run_named(&name, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.name.clone();
        self.run_named(&name, |b| f(b, input));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let saved_samples = self.samples;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            saved_samples,
        }
    }
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_median() {
        let mut c = Criterion { samples: 3 };
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }

    #[test]
    fn groups_scale_sample_size_and_restore_it() {
        let mut c = Criterion { samples: 7 };
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("one", |b| b.iter(|| black_box(1 + 1)));
            g.finish();
        }
        assert_eq!(c.samples, 7, "finish() restores the prior count");
        {
            let mut g = c.benchmark_group("g2");
            g.sample_size(3);
            // Dropped without finish(): the override must still not leak.
        }
        assert_eq!(c.samples, 7, "drop restores the prior count");
    }

    #[test]
    fn benchmark_id_formats_name_and_parameter() {
        let id = BenchmarkId::new("fit", 25);
        assert_eq!(id.name, "fit/25");
    }
}
